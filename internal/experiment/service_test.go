package experiment

import (
	"bytes"
	"testing"
	"time"

	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
)

// svcTestOpts is a scaled-down service ramp for the 8-node test line.
func svcTestOpts() ServiceOpts {
	o := DefaultServiceOpts()
	o.Warmup = 90 * time.Second
	o.Ops = 8
	o.Rates = []float64{0.5}
	o.Dist = "depth"
	o.Window = 8
	o.PerGroup = 8
	o.BatchWindow = 4 * time.Second
	o.BatchBits = 4
	o.MaxBatch = 4
	o.CacheCap = 64
	o.QueueDepth = 0
	o.HighWater = 0
	o.MaxRun = 15 * time.Minute
	return o
}

// transparentOpts disables every service feature so both sub-runs are the
// plain scheduler.
func transparentOpts() ServiceOpts {
	o := svcTestOpts()
	o.BatchWindow = 0
	o.CacheTTL = 0
	o.QueueDepth = 0
	o.HighWater = 0
	return o
}

func TestServiceStudySmall(t *testing.T) {
	opts := svcTestOpts()
	opts.Trace = true
	res, err := RunServiceStudy(smallScenario(7), ProtoTele, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("%d load points, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.OKBase == 0 || pt.OKSvc == 0 {
		t.Fatalf("no completions: %+v", pt)
	}
	if pt.GoodputBase <= 0 || pt.GoodputSvc <= 0 {
		t.Fatalf("rates: base=%v svc=%v", pt.GoodputBase, pt.GoodputSvc)
	}
	if pt.LatencyBase.Count() != pt.OKBase || pt.LatencySvc.Count() != pt.OKSvc {
		t.Fatalf("latency samples: base %d/%d svc %d/%d",
			pt.LatencyBase.Count(), pt.OKBase, pt.LatencySvc.Count(), pt.OKSvc)
	}
	if pt.CacheHits+pt.CacheMisses == 0 {
		t.Fatal("route cache saw no lookups")
	}
	if len(res.EventsBase) == 0 || len(res.EventsSvc) == 0 {
		t.Fatalf("trace events: base=%d svc=%d", len(res.EventsBase), len(res.EventsSvc))
	}
	// The service trace must carry batch membership spans whenever the
	// batcher flushed multi-member carriers.
	if pt.Batches > 0 {
		var spans, members int
		for _, ev := range res.EventsSvc {
			switch ev.Kind {
			case telemetry.KindSvcBatch:
				spans++
			case telemetry.KindSvcBatchMember:
				members++
			}
		}
		if spans != pt.Batches || members != pt.BatchedCmds {
			t.Fatalf("batch spans %d/%d, members %d/%d",
				spans, pt.Batches, members, pt.BatchedCmds)
		}
	}
}

// TestServiceTransparentMatchesThroughput: with every service feature
// disabled the study must reduce to the open-loop throughput study — same
// outcomes, and a byte-identical sink-layer trace.
func TestServiceTransparentMatchesThroughput(t *testing.T) {
	sOpts := transparentOpts()
	sOpts.Trace = true
	if !sOpts.Transparent() {
		t.Fatal("opts not transparent")
	}
	sRes, err := RunServiceStudy(smallScenario(7), ProtoTele, sOpts)
	if err != nil {
		t.Fatal(err)
	}

	tOpts := DefaultThroughputOpts()
	tOpts.Mode = "open"
	tOpts.Warmup = sOpts.Warmup
	tOpts.Ops = sOpts.Ops
	tOpts.Rates = sOpts.Rates
	tOpts.Dist = sOpts.Dist
	tOpts.Window = sOpts.Window
	tOpts.PerGroup = sOpts.PerGroup
	tOpts.GroupBits = sOpts.GroupBits
	tOpts.Retries = sOpts.Retries
	tOpts.OpBudget = sOpts.OpBudget
	tOpts.MaxRun = sOpts.MaxRun
	tOpts.Trace = true
	tRes, err := RunThroughputStudy(smallScenario(7), ProtoTele, tOpts)
	if err != nil {
		t.Fatal(err)
	}

	sp, tp := sRes.Points[0], tRes.Points[0]
	if sp.OKSvc != tp.OK || sp.FailedSvc != tp.Failed || sp.UnresolvedSvc != tp.Unresolved {
		t.Fatalf("transparent outcomes diverge: svc ok=%d failed=%d unresolved=%d, throughput ok=%d failed=%d unresolved=%d",
			sp.OKSvc, sp.FailedSvc, sp.UnresolvedSvc, tp.OK, tp.Failed, tp.Unresolved)
	}
	if sp.Batches != 0 || sp.Shed != 0 || sp.Delayed != 0 ||
		sp.CacheHits+sp.CacheMisses != 0 {
		t.Fatalf("transparent run exercised service features: %+v", sp)
	}

	render := func(evs []telemetry.Event) []byte {
		var sb bytes.Buffer
		if err := telemetry.WriteJSONL(&sb, evs); err != nil {
			t.Fatal(err)
		}
		return sb.Bytes()
	}
	base, svc, thr := render(sRes.EventsBase), render(sRes.EventsSvc), render(tRes.Events)
	if !bytes.Equal(base, thr) {
		t.Fatalf("transparent service trace differs from throughput trace (%d vs %d bytes)", len(base), len(thr))
	}
	if !bytes.Equal(svc, base) {
		t.Fatal("transparent service sub-run trace differs from its own baseline")
	}
}

// TestServiceReplicationDeterministic: parallel seed replication must
// render byte-identical reports, CSVs, and traces to the serial run.
func TestServiceReplicationDeterministic(t *testing.T) {
	seeds := DeriveSeeds(13, 2)
	opts := svcTestOpts()
	opts.Trace = true

	render := func(workers int) ([]byte, []byte, []byte) {
		res, err := Replicator{Workers: workers}.ServiceStudy(smallScenario, ProtoTele, opts, seeds)
		if err != nil {
			t.Fatal(err)
		}
		var report, csvOut, events bytes.Buffer
		WriteServiceReport(&report, res)
		if err := WriteServiceCSV(&csvOut, res); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteJSONL(&events, res.EventsBase); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteJSONL(&events, res.EventsSvc); err != nil {
			t.Fatal(err)
		}
		return report.Bytes(), csvOut.Bytes(), events.Bytes()
	}

	serialRep, serialCSV, serialEv := render(1)
	parallelRep, parallelCSV, parallelEv := render(4)
	if !bytes.Equal(serialRep, parallelRep) {
		t.Fatalf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialRep, parallelRep)
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialCSV, parallelCSV)
	}
	if !bytes.Equal(serialEv, parallelEv) {
		t.Fatal("parallel telemetry stream differs from serial")
	}
}

func TestServiceStudyValidation(t *testing.T) {
	opts := svcTestOpts()
	opts.Rates = nil
	if _, err := RunServiceStudy(smallScenario(7), ProtoTele, opts); err == nil {
		t.Fatal("empty rate sweep accepted")
	}
	opts = svcTestOpts()
	opts.Dist = "bogus"
	if _, err := RunServiceStudy(smallScenario(7), ProtoTele, opts); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

// goldenServiceResult is a hand-built fixture exercising every column of
// the service report and CSV.
func goldenServiceResult() *ServiceResult {
	res := &ServiceResult{
		Proto:    "TeleAdjust",
		Scenario: "golden-grid",
		Dist:     "hotspot",
	}
	p1 := &ServicePoint{
		Label: "rate=0.50", Ops: 120,
		Offered: 0.41, OfferedBase: 0.44,
		GoodputBase: 0.137, GoodputSvc: 0.167,
		OKBase: 82, OKSvc: 94, FailedBase: 38, FailedSvc: 26,
		Batches: 23, BatchedCmds: 50,
		CacheHits: 22, CacheMisses: 75,
		LatencyBase: &stats.Series{}, LatencySvc: &stats.Series{},
	}
	for _, v := range []float64{88.1, 142.7, 179.3, 205.5, 390.2} {
		p1.LatencyBase.Add(v)
	}
	for _, v := range []float64{31.8, 60.4, 82.3, 110.9, 247.6} {
		p1.LatencySvc.Add(v)
	}
	p2 := &ServicePoint{
		Label: "rate=2.00", Ops: 120,
		Offered: 1.21, OfferedBase: 1.34,
		GoodputBase: 0.159, GoodputSvc: 0.205,
		OKBase: 96, OKSvc: 104, FailedBase: 24, FailedSvc: 9,
		UnresolvedSvc: 1, Shed: 4, Delayed: 2,
		Batches: 31, BatchedCmds: 88,
		CacheHits: 19, CacheMisses: 93,
		LatencyBase: &stats.Series{}, LatencySvc: &stats.Series{},
	}
	for _, v := range []float64{120.4, 201.8, 248.4, 300.0, 511.7} {
		p2.LatencyBase.Add(v)
	}
	for _, v := range []float64{58.2, 101.3, 140.2, 188.8, 352.1} {
		p2.LatencySvc.Add(v)
	}
	res.Points = []*ServicePoint{p1, p2}
	return res
}

func TestWriteServiceReportGolden(t *testing.T) {
	var sb bytes.Buffer
	WriteServiceReport(&sb, goldenServiceResult())
	checkGolden(t, "service_report.golden", sb.Bytes())
}

func TestWriteServiceCSVGolden(t *testing.T) {
	var sb bytes.Buffer
	if err := WriteServiceCSV(&sb, goldenServiceResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "service_csv.golden", sb.Bytes())
}
