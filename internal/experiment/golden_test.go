package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"teleadjust/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report files")

// checkGolden compares got against testdata/<name>, rewriting the file
// when the test runs with -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenCodingResult is a hand-built fixture: small, deterministic values
// exercising every section of the coding report.
func goldenCodingResult() *CodingResult {
	res := &CodingResult{
		Scenario:           "golden-grid",
		Converged:          0.975,
		HopRatio:           1.081,
		CodeLenByHop:       stats.NewByKey(),
		ChildrenByHop:      stats.NewByKey(),
		ConvergenceBeacons: &stats.Series{},
		ReverseVsCTP:       &stats.Scatter{},
	}
	for hop, bits := range map[int][]float64{
		1: {2, 3, 2},
		2: {5, 6},
		3: {8, 9, 10},
	} {
		for _, b := range bits {
			res.CodeLenByHop.Add(hop, b)
		}
	}
	res.ChildrenByHop.Add(1, 3)
	res.ChildrenByHop.Add(1, 2)
	res.ChildrenByHop.Add(2, 1)
	for _, v := range []float64{4, 6, 7, 9, 12} {
		res.ConvergenceBeacons.Add(v)
	}
	res.ReverseVsCTP.Add(1, 1)
	res.ReverseVsCTP.Add(2, 2)
	res.ReverseVsCTP.Add(2, 3)
	res.ReverseVsCTP.Add(3, 3)
	return res
}

func goldenControlResult() *ControlResult {
	res := &ControlResult{
		Proto:        "TeleAdjust",
		Scenario:     "golden-grid",
		Sent:         20,
		Delivered:    18,
		Skipped:      1,
		TxPerPacket:  4.27,
		AvgDutyCycle: 0.0231,
		PDRByHop:     stats.NewByKey(),
		LatencyByHop: stats.NewByKey(),
		ATHX:         &stats.Scatter{},
		Detail:       map[string]float64{"backtracks": 3, "rescues": 1},
	}
	for hop, pdr := range map[int][]float64{
		1: {1, 1},
		2: {1, 0.5},
		3: {0.75},
	} {
		for _, v := range pdr {
			res.PDRByHop.Add(hop, v)
		}
	}
	res.LatencyByHop.Add(1, 0.9)
	res.LatencyByHop.Add(2, 1.8)
	res.LatencyByHop.Add(3, 2.6)
	res.ATHX.Add(1, 1)
	res.ATHX.Add(2, 2)
	res.ATHX.Add(3, 4)
	return res
}

func TestWriteCodingReportGolden(t *testing.T) {
	var sb bytes.Buffer
	WriteCodingReport(&sb, goldenCodingResult())
	checkGolden(t, "coding_report.golden", sb.Bytes())
}

// TestWriteCodingReportEmptyConvergenceGolden pins the n/a rendering: a
// study where no node converged must not print ±Inf.
func TestWriteCodingReportEmptyConvergenceGolden(t *testing.T) {
	res := goldenCodingResult()
	res.Converged = 0
	res.ConvergenceBeacons = &stats.Series{}
	var sb bytes.Buffer
	WriteCodingReport(&sb, res)
	if bytes.Contains(sb.Bytes(), []byte("Inf")) {
		t.Fatalf("report leaks Inf:\n%s", sb.String())
	}
	checkGolden(t, "coding_report_unconverged.golden", sb.Bytes())
}

func TestWriteControlReportGolden(t *testing.T) {
	var sb bytes.Buffer
	WriteControlReport(&sb, goldenControlResult())
	checkGolden(t, "control_report.golden", sb.Bytes())
}
