package experiment

import (
	"testing"
	"time"

	"teleadjust/internal/fault"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
)

// TestLongIndoorComparison runs the Fig-7/Table-III comparison on the
// WiFi-interfered indoor channel and asserts the paper's qualitative
// ordering: Drip and Re-Tele stay near-perfect, Tele close behind, RPL
// degrading hardest; Drip pays an order of magnitude more transmissions.
// Takes a couple of minutes; skipped under -short.
func TestLongIndoorComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("long reproduction test")
	}
	opts := DefaultControlOpts()
	opts.Warmup = 7 * time.Minute
	opts.Packets = 30
	opts.Interval = 20 * time.Second
	build := func(seed uint64) Scenario {
		s := Indoor(seed, true)
		s.TuneControlTimeouts(18 * time.Second)
		return s
	}
	results := map[Proto]*ControlResult{}
	for _, proto := range []Proto{ProtoTele, ProtoReTele, ProtoDrip, ProtoRPL} {
		res, err := RunControlStudySeeds(build, proto, opts, []uint64{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		results[proto] = res
		t.Logf("%-8s PDR=%5.1f%% tx/pkt=%6.2f duty=%5.2f%%",
			res.Proto, 100*res.PDR(), res.TxPerPacket, 100*res.AvgDutyCycle)
	}
	if pdr := results[ProtoDrip].PDR(); pdr < 0.95 {
		t.Errorf("Drip PDR %.2f under interference, want near-1 (paper: 0.997)", pdr)
	}
	if pdr := results[ProtoReTele].PDR(); pdr < 0.93 {
		t.Errorf("Re-Tele PDR %.2f, want ≥0.93 (paper: 0.993)", pdr)
	}
	if pdr := results[ProtoTele].PDR(); pdr < 0.90 {
		t.Errorf("Tele PDR %.2f, want ≥0.90 (paper: 0.969)", pdr)
	}
	// RPL must degrade below the TeleAdjusting variants under dynamics.
	if results[ProtoRPL].PDR() >= results[ProtoReTele].PDR() {
		t.Errorf("RPL PDR %.2f not below Re-Tele %.2f (paper: 0.901 vs 0.993)",
			results[ProtoRPL].PDR(), results[ProtoReTele].PDR())
	}
	// Flooding costs an order of magnitude more transmissions.
	if results[ProtoDrip].TxPerPacket < 5*results[ProtoTele].TxPerPacket {
		t.Errorf("Drip tx/packet %.1f not ≫ Tele %.1f (paper: 116 vs 4.6)",
			results[ProtoDrip].TxPerPacket, results[ProtoTele].TxPerPacket)
	}
	// And the most energy (duty cycle).
	if results[ProtoDrip].AvgDutyCycle <= results[ProtoTele].AvgDutyCycle {
		t.Errorf("Drip duty %.3f not above Tele %.3f (paper: 5.4%% vs least)",
			results[ProtoDrip].AvgDutyCycle, results[ProtoTele].AvgDutyCycle)
	}
}

// TestLongSparseConvergence verifies the Sparse-linear field (225 nodes,
// tens of hops) fully attaches and codes within 25 simulated minutes.
// Skipped under -short.
func TestLongSparseConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long reproduction test")
	}
	scn := SparseLinear(1)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	// Convergence-driven: the 45-column frontier advances at a variable
	// pace, so run in increments up to a one-hour cap and stop early once
	// the field is attached and coded.
	var attached, coded, maxHop int
	measure := func() {
		attached, coded, maxHop = 0, 0, 0
		for i := range net.Stacks {
			id := radio.NodeID(i)
			if id == net.Sink {
				continue
			}
			if h := net.CTPHops(id); h > 0 {
				attached++
				if h > maxHop {
					maxHop = h
				}
			}
			if _, ok := net.Tele(id).Code(); ok {
				coded++
			}
		}
	}
	for step := 0; step < 12; step++ {
		if err := net.Run(5 * time.Minute); err != nil {
			t.Fatal(err)
		}
		measure()
		if attached >= 213 && coded >= 220 {
			break
		}
	}
	t.Logf("attached=%d/224 coded=%d maxHop=%d at t=%v", attached, coded, maxHop, net.Eng.Now())
	if attached < 212 {
		t.Errorf("attached %d/224, want ≥95%%", attached)
	}
	if coded < 220 {
		t.Errorf("coded %d/224, want ≥98%%", coded)
	}
	if maxHop < 25 {
		t.Errorf("max hop %d; the sparse field should be tens of hops deep", maxHop)
	}
}

// TestLongChurnRobustness fails five nodes during the control phase and
// asserts the opportunistic protocol keeps delivering to the survivors
// while RPL's stored routes degrade — the paper's "robustness against
// network dynamics" claim taken further than the WiFi experiment.
// The churn is a scripted FaultPlan (one per seed, victims drawn from a
// seed-derived stream) so both protocols face the identical failure
// schedule. Skipped under -short.
func TestLongChurnRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("long reproduction test")
	}
	opts := DefaultControlOpts()
	opts.Warmup = 7 * time.Minute
	opts.Packets = 30
	opts.Interval = 20 * time.Second
	build := func(seed uint64) Scenario {
		s := Indoor(seed, false)
		s.TuneControlTimeouts(18 * time.Second)
		// Five crashes at 100 s spacing through the control phase,
		// victims picked without replacement from a per-seed stream.
		rng := sim.DeriveRNG(seed, 0x1c11)
		picked := map[int]bool{}
		plan := &fault.Plan{Name: "indoor-churn"}
		for k := 0; len(plan.Events) < 5 && k < 1000; k++ {
			v := rng.IntN(s.Dep.Len())
			if v == s.Dep.Sink || picked[v] {
				continue
			}
			picked[v] = true
			at := opts.Warmup + time.Duration(len(plan.Events)+1)*100*time.Second
			plan.Events = append(plan.Events, fault.Event{
				At: fault.Duration(at), Kind: fault.Crash, Node: v,
			})
		}
		s.Fault = plan
		return s
	}
	tele, err := RunControlStudySeeds(build, ProtoReTele, opts, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rpl, err := RunControlStudySeeds(build, ProtoRPL, opts, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: Re-Tele PDR=%.1f%%, RPL PDR=%.1f%%", 100*tele.PDR(), 100*rpl.PDR())
	if tele.PDR() < 0.85 {
		t.Errorf("Re-Tele PDR %.2f under churn, want ≥0.85", tele.PDR())
	}
	if tele.PDR() <= rpl.PDR()-0.02 {
		t.Errorf("Re-Tele (%.2f) should not trail RPL (%.2f) under churn", tele.PDR(), rpl.PDR())
	}
}
