package experiment

import (
	"fmt"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/sink"
	"teleadjust/internal/stats"
	"teleadjust/internal/telemetry"
	"teleadjust/internal/workload"
)

// ThroughputOpts tunes a throughput study: a sweep of offered load
// against the sink command plane, one fresh network per load point.
type ThroughputOpts struct {
	// Warmup lets the tree, codes, and registries converge before the
	// workload starts.
	Warmup time.Duration
	// Ops is the number of control operations per load point.
	Ops int
	// Mode selects the loop discipline: "closed" (fixed concurrency,
	// sweeps Concurrency) or "open" (Poisson arrivals, sweeps Rates).
	Mode string
	// Concurrency are the closed-loop widths to sweep; each width also
	// sets the scheduler's admission window, so the sweep measures how the
	// command plane scales with sink-side parallelism.
	Concurrency []int
	// Rates are the open-loop offered rates (operations per second).
	Rates []float64
	// Dist selects the destination distribution: "uniform",
	// "hotspot" (bias 80% of operations onto the largest hop-1 subtree),
	// or "depth" (weight by CTP hop count).
	Dist string
	// Window is the open-loop admission window (closed mode derives the
	// window from the swept concurrency).
	Window int
	// PerGroup caps concurrent in-flight operations per shared-prefix
	// subtree group; GroupBits sets the prefix depth (see sink.GroupKey).
	PerGroup  int
	GroupBits int
	// Retries is the per-operation retry budget layered over protocol
	// recovery; OpBudget (optional) bounds an operation's total lifetime.
	Retries  int
	OpBudget time.Duration
	// MaxRun caps each load point's workload phase in simulated time, so
	// a collapsed network cannot hang the study.
	MaxRun time.Duration
	// Trace collects the sink-layer command-plane events of every load
	// point into ThroughputResult.Events (seed-merge safe).
	Trace bool
}

// DefaultThroughputOpts returns a closed-loop sweep over 1..8-way
// concurrency with moderate per-point cost.
func DefaultThroughputOpts() ThroughputOpts {
	return ThroughputOpts{
		Warmup:      4 * time.Minute,
		Ops:         40,
		Mode:        "closed",
		Concurrency: []int{1, 2, 4, 8},
		Dist:        "uniform",
		Window:      8,
		PerGroup:    1,
		GroupBits:   6,
		Retries:     1,
		MaxRun:      30 * time.Minute,
	}
}

// ThroughputPoint is one load point of the sweep.
type ThroughputPoint struct {
	// Label names the swept knob value ("conc=8" or "rate=0.50").
	Label string
	// Offered is the realized offered load (submitted operations per
	// second of workload phase); for closed loops it tracks goodput.
	Offered float64
	// Goodput is successfully completed operations per second.
	Goodput float64

	Ops        int
	OK         int
	Failed     int
	Unroutable int
	Rejected   int
	Expired    int
	Retries    int
	// Unresolved counts operations still pending when MaxRun cut the
	// point off (0 on a healthy run).
	Unresolved int

	// Latency is the end-to-end sink latency (enqueue → completion,
	// seconds) of successful operations; QueueWait is their admission
	// delay component.
	Latency   *stats.Series
	QueueWait *stats.Series
}

// ThroughputResult aggregates one throughput sweep.
type ThroughputResult struct {
	Proto    string
	Scenario string
	Mode     string
	Dist     string
	Points   []*ThroughputPoint
	// Events is the collected sink-layer telemetry (ThroughputOpts.Trace);
	// merged seed runs carry their replication index in Event.Run.
	Events []telemetry.Event
}

// throughputDist builds the destination distribution over the live
// non-sink nodes of a converged network.
func throughputDist(net *Net, kind string) (workload.Dist, error) {
	var nodes []radio.NodeID
	for i := range net.Stacks {
		id := radio.NodeID(i)
		if id == net.Sink || !net.Alive(id) {
			continue
		}
		nodes = append(nodes, id)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("experiment: no destinations for throughput workload")
	}
	switch kind {
	case "", "uniform":
		return workload.Uniform(nodes), nil
	case "depth":
		return workload.DepthWeighted(nodes, net.CTPHops), nil
	case "hotspot":
		// The hot set is the largest hop-1 subtree: group every node by
		// its ancestor adjacent to the sink (protocol-agnostic — the CTP
		// parent chain exists under every control protocol). Ties break
		// toward the lowest ancestor id for determinism.
		bySubtree := make(map[radio.NodeID][]radio.NodeID)
		for _, id := range nodes {
			if a, ok := net.hop1Ancestor(id); ok {
				bySubtree[a] = append(bySubtree[a], id)
			}
		}
		var hotRoot radio.NodeID
		best := -1
		for a, members := range bySubtree {
			if len(members) > best || (len(members) == best && a < hotRoot) {
				best = len(members)
				hotRoot = a
			}
		}
		return workload.Hotspot(nodes, bySubtree[hotRoot], 0.8), nil
	default:
		return nil, fmt.Errorf("experiment: unknown destination distribution %q", kind)
	}
}

// hop1Ancestor walks id's CTP parent chain to the node adjacent to the
// sink (id itself when it is hop 1); false on detachment or loops.
func (n *Net) hop1Ancestor(id radio.NodeID) (radio.NodeID, bool) {
	cur := id
	for hops := 0; hops <= len(n.Stacks); hops++ {
		p := n.Stacks[cur].Ctp.Parent()
		if p == n.Sink {
			return cur, true
		}
		if p == ctp.NoParent || int(p) >= len(n.Stacks) {
			return 0, false
		}
		cur = p
	}
	return 0, false
}

// pointLabels expands the swept knob of the options into load points.
func (o ThroughputOpts) points() ([]string, error) {
	switch o.Mode {
	case "", "closed":
		if len(o.Concurrency) == 0 {
			return nil, fmt.Errorf("experiment: closed-loop throughput study with no concurrency levels")
		}
		labels := make([]string, len(o.Concurrency))
		for i, c := range o.Concurrency {
			labels[i] = fmt.Sprintf("conc=%d", c)
		}
		return labels, nil
	case "open":
		if len(o.Rates) == 0 {
			return nil, fmt.Errorf("experiment: open-loop throughput study with no rates")
		}
		labels := make([]string, len(o.Rates))
		for i, r := range o.Rates {
			labels[i] = fmt.Sprintf("rate=%.2f", r)
		}
		return labels, nil
	default:
		return nil, fmt.Errorf("experiment: unknown workload mode %q", o.Mode)
	}
}

// RunThroughputStudy sweeps offered load against the sink command plane:
// each load point builds a fresh network from the scenario, converges it,
// and drives Ops control operations through a sink.Scheduler with the
// configured workload generator. Deterministic per seed: the same seed
// yields byte-identical results under serial and parallel replication.
func RunThroughputStudy(scn Scenario, proto Proto, opts ThroughputOpts) (*ThroughputResult, error) {
	labels, err := opts.points()
	if err != nil {
		return nil, err
	}
	maxRun := opts.MaxRun
	if maxRun <= 0 {
		maxRun = 30 * time.Minute
	}
	res := &ThroughputResult{
		Proto:    proto.String(),
		Scenario: scn.Name,
		Mode:     opts.Mode,
		Dist:     opts.Dist,
	}
	if res.Mode == "" {
		res.Mode = "closed"
	}
	if res.Dist == "" {
		res.Dist = "uniform"
	}

	for pi, label := range labels {
		net, err := Build(scn.config(proto))
		if err != nil {
			return nil, err
		}
		var collector *telemetry.Collector
		if opts.Trace {
			collector = telemetry.NewCollector()
			net.Bus.Subscribe(collector, telemetry.LayerSink)
		}
		if scn.OnNetBuilt != nil {
			scn.OnNetBuilt(net)
		}
		net.Start()
		if err := net.Run(opts.Warmup); err != nil {
			return nil, err
		}

		dist, err := throughputDist(net, opts.Dist)
		if err != nil {
			return nil, err
		}

		cfg := sink.Config{
			Window:    opts.Window,
			PerGroup:  opts.PerGroup,
			GroupBits: opts.GroupBits,
			Retries:   opts.Retries,
			OpBudget:  opts.OpBudget,
			// Disjoint ticket ranges per load point keep the merged
			// telemetry spans of the sweep from colliding.
			TicketBase: uint32(pi) << 20,
		}
		closed := res.Mode == "closed"
		if closed {
			// The swept knob: the admission window is the concurrency level.
			cfg.Window = opts.Concurrency[pi]
		}
		sched := sink.New(net.Eng, net.SinkCtrl(), cfg)
		sched.SetTelemetry(net.Metrics, net.Bus, net.Sink)
		if te := net.SinkTele(); te != nil {
			sched.SetCoder(te.DstCode)
		}

		// One decorrelated stream per load point, so adding a point never
		// perturbs the destinations of the others.
		rng := sim.DeriveRNG(scn.Seed, 0x3077+uint64(pi))
		var gen workload.Generator
		if closed {
			gen = workload.NewClosedLoop(net.Eng, sched, dist, rng, opts.Concurrency[pi], opts.Ops)
		} else {
			gen = workload.NewOpenLoop(net.Eng, sched, dist, rng, opts.Rates[pi], opts.Ops)
		}

		start := net.Eng.Now()
		gen.Start()
		for !gen.Done() && net.Eng.Now()-start < maxRun {
			chunk := 30 * time.Second
			if left := maxRun - (net.Eng.Now() - start); left < chunk {
				chunk = left
			}
			if err := net.Run(chunk); err != nil {
				return nil, err
			}
		}

		elapsed := net.Eng.Now() - start
		if gen.Done() && gen.FinishedAt() > start {
			elapsed = gen.FinishedAt() - start
		}
		pt := &ThroughputPoint{
			Label:     label,
			Ops:       opts.Ops,
			Latency:   &stats.Series{},
			QueueWait: &stats.Series{},
		}
		st := sched.Stats()
		pt.Retries = int(st.Retried)
		for _, o := range gen.Outcomes() {
			switch {
			case o.OK:
				pt.OK++
				pt.Latency.Add(o.Total().Seconds())
				pt.QueueWait.Add(o.QueueWait().Seconds())
			case o.Err == nil:
				pt.Failed++
			case o.Err == sink.ErrQueueFull:
				pt.Rejected++
			case o.Err == sink.ErrBudget:
				pt.Expired++
			default:
				pt.Unroutable++
			}
		}
		pt.Unresolved = opts.Ops - len(gen.Outcomes())
		if secs := elapsed.Seconds(); secs > 0 {
			pt.Offered = float64(len(gen.Outcomes())) / secs
			pt.Goodput = float64(pt.OK) / secs
		}
		res.Points = append(res.Points, pt)
		if collector != nil {
			res.Events = append(res.Events, collector.Events()...)
		}
	}
	return res, nil
}

// mergeThroughputResults merges per-seed sweeps point-by-point in slice
// (seed) order: counters sum, sample series pool, and rates average.
func mergeThroughputResults(results []*ThroughputResult) *ThroughputResult {
	var merged *ThroughputResult
	var events []telemetry.Event
	for ri, res := range results {
		for _, ev := range res.Events {
			ev.Run = ri
			events = append(events, ev)
		}
	}
	n := float64(len(results))
	for _, res := range results {
		if merged == nil {
			merged = res
			continue
		}
		for i, pt := range res.Points {
			m := merged.Points[i]
			m.Offered += pt.Offered
			m.Goodput += pt.Goodput
			m.Ops += pt.Ops
			m.OK += pt.OK
			m.Failed += pt.Failed
			m.Unroutable += pt.Unroutable
			m.Rejected += pt.Rejected
			m.Expired += pt.Expired
			m.Retries += pt.Retries
			m.Unresolved += pt.Unresolved
			for _, v := range pt.Latency.Values() {
				m.Latency.Add(v)
			}
			for _, v := range pt.QueueWait.Values() {
				m.QueueWait.Add(v)
			}
		}
	}
	if merged == nil {
		return nil
	}
	if len(results) > 1 {
		for _, m := range merged.Points {
			m.Offered /= n
			m.Goodput /= n
		}
	}
	merged.Events = events
	return merged
}

// ThroughputStudy runs RunThroughputStudy once per seed (fresh topology
// and channel per seed) and merges the sweeps in seed order.
func (r Replicator) ThroughputStudy(build func(seed uint64) Scenario, proto Proto, opts ThroughputOpts, seeds []uint64) (*ThroughputResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	results := make([]*ThroughputResult, len(seeds))
	err := r.each(len(seeds), func(i int) error {
		res, err := RunThroughputStudy(build(seeds[i]), proto, opts)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeThroughputResults(results), nil
}
