package experiment

import (
	"strings"
	"testing"
	"time"

	"teleadjust/internal/stats"
)

func TestBarTable(t *testing.T) {
	b := stats.NewByKey()
	b.Add(1, 1.0)
	b.Add(2, 0.5)
	b.Add(3, 0.0)
	out := BarTable(b, 1)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	full := strings.Count(lines[0], "█")
	half := strings.Count(lines[1], "█")
	zero := strings.Count(lines[2], "█")
	if full != 30 || half != 15 || zero != 0 {
		t.Fatalf("bars = %d/%d/%d, want 30/15/0", full, half, zero)
	}
	// Auto-scaling path.
	auto := BarTable(b, 0)
	if strings.Count(strings.Split(auto, "\n")[0], "█") != 30 {
		t.Fatal("auto scale did not normalize to the max mean")
	}
}

func TestIndent(t *testing.T) {
	got := Indent("a\nb\n", "  ")
	if got != "  a\n  b\n" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteReportsSmoke(t *testing.T) {
	var sb strings.Builder
	cr := &CodingResult{
		Scenario:           "t",
		CodeLenByHop:       stats.NewByKey(),
		ChildrenByHop:      stats.NewByKey(),
		ConvergenceBeacons: &stats.Series{},
		ReverseVsCTP:       &stats.Scatter{},
	}
	cr.CodeLenByHop.Add(1, 4)
	WriteCodingReport(&sb, cr)
	if !strings.Contains(sb.String(), "Fig 6a") {
		t.Fatal("coding report missing sections")
	}
	sb.Reset()
	res := &ControlResult{
		Proto:        "Tele",
		Scenario:     "t",
		Sent:         1,
		Delivered:    1,
		PDRByHop:     stats.NewByKey(),
		LatencyByHop: stats.NewByKey(),
		ATHX:         &stats.Scatter{},
	}
	res.PDRByHop.Add(2, 1)
	WriteControlReport(&sb, res)
	out := sb.String()
	for _, want := range []string{"Fig 7", "Fig 8", "Fig 9", "Fig 10", "Table III", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("control report missing %q", want)
		}
	}
	sb.Reset()
	sres := &ScopeStudyResult{Scenario: "t", Coverage: &stats.Series{}}
	WriteScopeReport(&sb, sres)
	if !strings.Contains(sb.String(), "Scoped dissemination") {
		t.Fatal("scope report missing header")
	}
	sb.Reset()
	WriteComparisonSummary(&sb, []*ControlResult{res})
	if !strings.Contains(sb.String(), "protocol comparison") {
		t.Fatal("summary missing header")
	}
}

func TestCSVExports(t *testing.T) {
	b := stats.NewByKey()
	b.Add(1, 0.5)
	b.Add(2, 0.75)
	var sb strings.Builder
	if err := WriteByKeyCSV(&sb, b, "hop", "pdr"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "hop,n,mean_pdr,min,max") || !strings.Contains(out, "1,1,0.5") {
		t.Fatalf("bad csv:\n%s", out)
	}
	sb.Reset()
	var sc stats.Scatter
	sc.Add(1, 2)
	if err := WriteScatterCSV(&sb, &sc, "x", "y"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1,2") {
		t.Fatalf("bad scatter csv: %q", sb.String())
	}
	sb.Reset()
	res := &ControlResult{
		Proto: "Tele", Scenario: "t", Sent: 2,
		PDRByHop:     b,
		LatencyByHop: stats.NewByKey(),
		ATHX:         &stats.Scatter{},
		TxPerPacket:  4.4,
	}
	if err := WriteControlCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig7_pdr,Tele,t,1") || !strings.Contains(sb.String(), "table3_tx") {
		t.Fatalf("bad control csv:\n%s", sb.String())
	}
	sb.Reset()
	cr := &CodingResult{
		Scenario:           "t",
		CodeLenByHop:       b,
		ChildrenByHop:      stats.NewByKey(),
		ConvergenceBeacons: &stats.Series{},
		ReverseVsCTP:       &stats.Scatter{},
	}
	if err := WriteCodingCSV(&sb, cr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig6a_codelen,t,1") {
		t.Fatalf("bad coding csv:\n%s", sb.String())
	}
}

func TestTopologySVG(t *testing.T) {
	scn := smallScenario(10)
	net, err := Build(scn.config(ProtoTeleAdjust))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	if err := net.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := net.WriteTopologySVG(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<circle") != 8 {
		t.Fatalf("circles = %d, want 8 nodes", strings.Count(svg, "<circle"))
	}
	if strings.Count(svg, "<line") < 7 {
		t.Fatalf("tree edges = %d, want ≥7", strings.Count(svg, "<line"))
	}
	// Converged codes must appear in the labels.
	if !strings.Contains(svg, ":0") {
		t.Fatal("no path codes in labels")
	}
}
