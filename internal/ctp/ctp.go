// Package ctp implements a Collection Tree Protocol substrate in the style
// of Gnawali et al. (SenSys 2009): ETX-gradient routing with a hybrid link
// estimator, Trickle-paced routing beacons, parent selection with
// hysteresis, and an upward (anycast-free, strictly parent-directed) data
// plane. TeleAdjusting consumes the tree through the hooks exposed here:
// parent-change events, received-beacon events, and beacon piggybacking.
package ctp

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"teleadjust/internal/linkest"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/trickle"
)

// NoParent marks the absence of a parent.
const NoParent radio.NodeID = radio.BroadcastID

// Beacon is the routing beacon message (broadcast, unacknowledged).
type Beacon struct {
	Seq     uint32
	PathETX float64
	Parent  radio.NodeID
	Hops    uint8
	// Ext carries piggybacked payload from other protocols (TeleAdjusting
	// attaches position-allocation state here).
	Ext any
}

// NoAck marks beacons as pure broadcasts for the MAC.
func (Beacon) NoAck() bool { return true }

// Data is an upward data-plane message addressed to the sink.
type Data struct {
	Origin    radio.NodeID
	OriginSeq uint32
	THL       uint8 // time-has-lived (hops travelled)
	App       any
}

// Config holds CTP parameters.
type Config struct {
	Beacon                trickle.Config
	Est                   linkest.Config
	ParentSwitchThreshold float64
	MaxDataRetries        int
	MaxTHL                uint8
	BeaconSize            int
	DataSize              int
	EvalInterval          time.Duration
	// MaxPathETX invalidates routes whose cost exceeds it — the bound
	// that stops count-to-infinity among partitioned nodes.
	MaxPathETX float64
	// HelpBeaconDelta is the adaptive-beaconing trigger (CTP §4.3): when
	// a neighbor advertises a cost this much above ours, our gradient
	// information would help it (it is orphaned, looping, or at the
	// construction frontier), so the beacon timer resets. Must exceed the
	// typical one-hop cost delta or dense networks beacon perpetually.
	// 0 disables (orphan beacons still reset).
	HelpBeaconDelta float64
	// CostChangeDelta triggers an early beacon when our own advertised
	// cost has drifted this far since the last beacon — the mechanism
	// that makes routing-loop costs spiral quickly to the validity bound.
	// 0 disables.
	CostChangeDelta float64
	// DupLoopTHLDelta is the datapath loop detector's sensitivity: a
	// duplicate data packet arriving from a different neighbor with at
	// least this many extra hops breaks the route. 0 treats ANY
	// cross-sender duplicate as loop evidence — aggressive healing for
	// large static fields where loops starve their own detection traffic;
	// too twitchy under link fading (alternate-path duplicates after lost
	// acks are routine there).
	DupLoopTHLDelta uint8
}

// DefaultConfig returns TinyOS-like defaults.
func DefaultConfig() Config {
	return Config{
		Beacon:                trickle.DefaultConfig(),
		Est:                   linkest.DefaultConfig(),
		ParentSwitchThreshold: 1.5,
		MaxDataRetries:        3,
		MaxTHL:                32,
		BeaconSize:            20,
		DataSize:              28,
		EvalInterval:          time.Second,
		MaxPathETX:            100,
		DupLoopTHLDelta:       3,
		// Help beacons are off by default: under link fading the
		// "neighbor looks worse than me" condition fires routinely and
		// the resulting beacon storms congest the channel. Large
		// low-dynamics fields (the 225-node simulation scenarios) enable
		// it to accelerate frontier construction.
		HelpBeaconDelta: 0,
		CostChangeDelta: 6,
	}
}

// Stats counts CTP data-plane outcomes at this node.
type Stats struct {
	Originated    uint64
	Forwarded     uint64
	DeliveredSink uint64
	DroppedRetry  uint64
	DroppedNoTree uint64
	DroppedTHL    uint64
	DroppedDup    uint64
}

type neighborAd struct {
	pathETX float64
	parent  radio.NodeID
	hops    uint8
	heardAt time.Duration
}

type pendingData struct {
	data    *Data
	retries int
}

type dedupKey struct {
	origin radio.NodeID
	seq    uint32
}

// seenEntry records when a data packet was first handled, which
// downstream neighbor delivered it, and its hop count at that moment. A
// later copy that has accumulated additional hops circled back through
// the network — datapath loop evidence. (A copy from a different sender
// at the SAME depth is just an alternate-path duplicate after a lost
// ack.)
type seenEntry struct {
	at   time.Duration
	from radio.NodeID
	thl  uint8
}

// CTP is one node's collection protocol instance.
type CTP struct {
	node   *node.Node
	eng    *sim.Engine
	cfg    Config
	rng    *rand.Rand
	isSink bool

	est     *linkest.Estimator
	beacons *trickle.Timer
	evalTk  *sim.Ticker

	ads map[radio.NodeID]*neighborAd

	parent  radio.NodeID
	pathETX float64
	hops    uint8
	// lastAdvertisedETX is the cost carried by our most recent beacon;
	// a material drift triggers an early beacon (CTP's "significant cost
	// change" rule, the mechanism that lets loop costs spiral quickly).
	lastAdvertisedETX float64

	beaconSeq uint32
	dataSeq   uint32
	seen      map[dedupKey]seenEntry
	inflight  map[*radio.Frame]*pendingData

	onParentChange []func(old, new radio.NodeID)
	onBeaconRecv   []func(from radio.NodeID, b *Beacon)
	beaconExt      func() any
	onDeliver      func(origin radio.NodeID, app any)

	stats Stats
}

var _ node.Protocol = (*CTP)(nil)

// New creates a CTP instance on the node and registers it. Call Start to
// begin beaconing.
func New(n *node.Node, cfg Config, rng *rand.Rand, isSink bool) *CTP {
	c := &CTP{
		node:              n,
		eng:               n.Engine(),
		cfg:               cfg,
		rng:               rng,
		isSink:            isSink,
		est:               linkest.New(cfg.Est),
		ads:               make(map[radio.NodeID]*neighborAd),
		parent:            NoParent,
		pathETX:           math.Inf(1),
		lastAdvertisedETX: math.Inf(1),
		seen:              make(map[dedupKey]seenEntry),
		inflight:          make(map[*radio.Frame]*pendingData),
	}
	if isSink {
		c.pathETX = 0
		c.hops = 0
	}
	c.beacons = trickle.New(c.eng, cfg.Beacon, rng, c.sendBeacon)
	c.evalTk = sim.NewTicker(c.eng, cfg.EvalInterval, c.evaluate)
	n.Register(c)
	return c
}

// Start begins beaconing and periodic parent evaluation.
func (c *CTP) Start() {
	c.beacons.Start()
	c.evalTk.Start()
}

// Stop halts timers.
func (c *CTP) Stop() {
	c.beacons.Stop()
	c.evalTk.Stop()
}

// --- Introspection and hooks ---

// Parent returns the current parent (NoParent if none).
func (c *CTP) Parent() radio.NodeID { return c.parent }

// PathETX returns the advertised path ETX (0 at the sink, +Inf when
// unattached).
func (c *CTP) PathETX() float64 { return c.pathETX }

// Hops returns the advertised hop distance to the sink.
func (c *CTP) Hops() uint8 { return c.hops }

// HasRoute reports whether the node is attached to the tree.
func (c *CTP) HasRoute() bool { return c.isSink || c.parent != NoParent }

// IsSink reports whether this node is the collection root.
func (c *CTP) IsSink() bool { return c.isSink }

// Estimator exposes the link estimator (read-mostly; shared with
// TeleAdjusting's relay decisions).
func (c *CTP) Estimator() *linkest.Estimator { return c.est }

// NeighborAd returns the last routing advertisement heard from a neighbor.
func (c *CTP) NeighborAd(id radio.NodeID) (pathETX float64, parent radio.NodeID, hops uint8, ok bool) {
	ad, found := c.ads[id]
	if !found {
		return 0, NoParent, 0, false
	}
	return ad.pathETX, ad.parent, ad.hops, true
}

// OnParentChange registers a callback fired when the parent changes
// (old == NoParent on first attachment — the paper's "routing found
// event").
func (c *CTP) OnParentChange(fn func(old, new radio.NodeID)) {
	c.onParentChange = append(c.onParentChange, fn)
}

// OnBeaconReceived registers a callback fired for every received beacon.
func (c *CTP) OnBeaconReceived(fn func(from radio.NodeID, b *Beacon)) {
	c.onBeaconRecv = append(c.onBeaconRecv, fn)
}

// SetBeaconExt installs the piggyback provider called when a beacon is
// about to be sent.
func (c *CTP) SetBeaconExt(fn func() any) { c.beaconExt = fn }

// SetDeliverFunc installs the sink-side application delivery callback.
func (c *CTP) SetDeliverFunc(fn func(origin radio.NodeID, app any)) { c.onDeliver = fn }

// TriggerBeacon resets the Trickle timer, forcing a beacon soon.
func (c *CTP) TriggerBeacon() { c.beacons.Reset() }

// ReportLinkOutcome feeds a unicast outcome observed by another protocol
// (RPL DAOs, TeleAdjusting position frames) into the link estimator, so
// asymmetric links are detected even without CTP data traffic, and
// re-evaluates the parent.
func (c *CTP) ReportLinkOutcome(to radio.NodeID, acked bool) {
	c.est.OnDataOutcome(to, acked, c.eng.Now())
	c.evaluate()
}

// Stats returns a copy of the data-plane statistics.
func (c *CTP) Stats() Stats { return c.stats }

// --- Beaconing ---

func (c *CTP) sendBeacon() {
	// A beacon queued behind other traffic would be stale by the time it
	// airs (LPL sends take up to a wake interval each); skip and let
	// Trickle fire again. TinyOS CTP has a single beacon buffer for the
	// same reason.
	if c.node.MAC().Busy() || c.node.MAC().QueueLen() > 0 {
		return
	}
	c.beaconSeq++
	c.lastAdvertisedETX = c.pathETX
	b := &Beacon{
		Seq:     c.beaconSeq,
		PathETX: c.pathETX,
		Parent:  c.parent,
		Hops:    c.hops,
	}
	size := c.cfg.BeaconSize
	if c.beaconExt != nil {
		b.Ext = c.beaconExt()
		if s, ok := b.Ext.(interface{ ExtSize() int }); ok {
			size += s.ExtSize()
		}
	}
	f := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     radio.BroadcastID,
		Size:    size,
		Payload: b,
	}
	// Best effort; a full queue just delays topology convergence.
	_ = c.node.Send(f)
}

func (c *CTP) handleBeacon(from radio.NodeID, b *Beacon) {
	now := c.eng.Now()
	c.est.OnBeacon(from, b.Seq, now)
	ad, ok := c.ads[from]
	if !ok {
		ad = &neighborAd{}
		c.ads[from] = ad
	}
	ad.pathETX = b.PathETX
	ad.parent = b.Parent
	ad.hops = b.Hops
	ad.heardAt = now
	// Trickle consistency (adaptive beaconing): hearing a node whose cost
	// is far above ours — orphaned, looping, or at the construction
	// frontier — means our gradient information would help it, so beacon
	// soon. Routine beacons must NOT reset the timer, or churn feeds a
	// beacon storm that congests the channel and causes more churn.
	myCost := c.pathETX
	switch {
	case c.HasRoute() && (math.IsInf(b.PathETX, 1) ||
		(c.cfg.HelpBeaconDelta > 0 && b.PathETX > myCost+c.cfg.HelpBeaconDelta)):
		c.beacons.Reset()
	case !c.HasRoute() && !math.IsInf(b.PathETX, 1):
		// Orphan side of the same exchange: a routed neighbor is in
		// range, so advertise the need eagerly until attached. (Beacons
		// from fellow orphans must NOT reset, or a large unattached
		// region jams its own channel at the minimum interval.)
		c.beacons.Reset()
	default:
		c.beacons.Hear()
	}
	c.evaluate()
	for _, fn := range c.onBeaconRecv {
		fn(from, b)
	}
}

// evaluate runs parent selection.
func (c *CTP) evaluate() {
	if c.isSink {
		return
	}
	type candidate struct {
		id   radio.NodeID
		cost float64
	}
	best := candidate{id: NoParent, cost: math.Inf(1)}
	for _, id := range c.est.Neighbors() {
		ad, ok := c.ads[id]
		if !ok || math.IsInf(ad.pathETX, 1) {
			continue
		}
		if ad.parent == c.node.ID() {
			continue // immediate loop
		}
		if ad.hops >= c.cfg.MaxTHL {
			continue // advertised depth only gets there inside a loop
		}
		cost := c.est.ETX(id) + ad.pathETX
		if cost >= c.cfg.MaxPathETX {
			continue // beyond the valid-route bound
		}
		if cost < best.cost {
			best = candidate{id: id, cost: cost}
		}
	}
	if best.id == NoParent {
		// No usable candidate. Our own cost must still track the current
		// parent's advertisements — a stale self-cost is what lets
		// routing loops persist — and blow-ups past the validity bound
		// (count-to-infinity among partitioned nodes) detach.
		if c.parent != NoParent {
			if c.currentCost() >= c.cfg.MaxPathETX {
				c.detach()
				return
			}
			c.refreshCost()
		}
		return
	}
	switch {
	case c.parent == NoParent:
		c.adopt(best.id, best.cost)
	case best.id != c.parent:
		cur := c.currentCost()
		if best.cost+c.cfg.ParentSwitchThreshold < cur {
			c.adopt(best.id, best.cost)
		} else if cur >= c.cfg.MaxPathETX {
			c.adopt(best.id, best.cost)
		} else {
			c.refreshCost()
		}
	default:
		if c.currentCost() >= c.cfg.MaxPathETX {
			c.detach()
			return
		}
		c.refreshCost()
	}
}

// detach abandons the current route: the node advertises itself as
// unattached until a valid candidate appears.
func (c *CTP) detach() {
	old := c.parent
	c.parent = NoParent
	c.pathETX = math.Inf(1)
	c.beacons.Reset()
	for _, fn := range c.onParentChange {
		fn(old, NoParent)
	}
}

// currentCost recomputes the cost through the current parent.
func (c *CTP) currentCost() float64 {
	if c.parent == NoParent {
		return math.Inf(1)
	}
	ad, ok := c.ads[c.parent]
	if !ok {
		return math.Inf(1)
	}
	etx := c.est.ETX(c.parent)
	if etx == linkest.UnknownETX {
		return math.Inf(1)
	}
	return etx + ad.pathETX
}

func (c *CTP) refreshCost() {
	cost := c.currentCost()
	if math.IsInf(cost, 1) {
		return
	}
	c.pathETX = cost
	if c.cfg.CostChangeDelta > 0 && !math.IsInf(c.lastAdvertisedETX, 1) &&
		math.Abs(cost-c.lastAdvertisedETX) > c.cfg.CostChangeDelta {
		c.beacons.Reset()
	}
	if ad, ok := c.ads[c.parent]; ok {
		if ad.hops >= c.cfg.MaxTHL {
			// Hop counts only grow like this inside a routing loop
			// (each trip around the cycle adds one): break it by
			// detaching; the orphan/help beacon exchange rebuilds a
			// real route.
			c.detach()
			return
		}
		c.hops = ad.hops + 1
	}
}

func (c *CTP) adopt(id radio.NodeID, cost float64) {
	old := c.parent
	c.parent = id
	c.pathETX = cost
	if ad, ok := c.ads[id]; ok {
		c.hops = ad.hops + 1
	}
	c.beacons.Reset()
	for _, fn := range c.onParentChange {
		fn(old, id)
	}
}

// --- Data plane ---

// SendToSink originates an upward data packet carrying app.
func (c *CTP) SendToSink(app any) error {
	c.dataSeq++
	d := &Data{
		Origin:    c.node.ID(),
		OriginSeq: c.dataSeq,
		App:       app,
	}
	c.stats.Originated++
	if c.isSink {
		c.stats.DeliveredSink++
		if c.onDeliver != nil {
			c.onDeliver(d.Origin, d.App)
		}
		return nil
	}
	return c.forward(d)
}

func (c *CTP) forward(d *Data) error {
	if c.parent == NoParent {
		c.stats.DroppedNoTree++
		return fmt.Errorf("ctp %d: no route to sink", c.node.ID())
	}
	f := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     c.parent,
		Size:    c.cfg.DataSize,
		Payload: d,
	}
	c.inflight[f] = &pendingData{data: d, retries: c.cfg.MaxDataRetries}
	if err := c.node.Send(f); err != nil {
		delete(c.inflight, f)
		c.stats.DroppedRetry++
		return err
	}
	return nil
}

// --- node.Protocol implementation ---

// Owns implements node.Protocol.
func (c *CTP) Owns(payload any) bool {
	switch payload.(type) {
	case *Beacon, *Data:
		return true
	}
	return false
}

// Classify implements node.Protocol.
func (c *CTP) Classify(f *radio.Frame) mac.Classification {
	switch f.Payload.(type) {
	case *Beacon:
		return mac.Classification{Decision: mac.Deliver}
	case *Data:
		if f.Dst == c.node.ID() {
			return mac.Classification{Decision: mac.AckAndDeliver}
		}
	}
	return mac.Classification{Decision: mac.Ignore}
}

// Deliver implements node.Protocol.
func (c *CTP) Deliver(f *radio.Frame) {
	switch p := f.Payload.(type) {
	case *Beacon:
		c.handleBeacon(f.Src, p)
	case *Data:
		c.handleData(f.Src, p)
	}
}

func (c *CTP) handleData(from radio.NodeID, d *Data) {
	c.gcSeen()
	if d.Origin == c.node.ID() && !c.isSink {
		// Our own packet came back to us: unambiguous routing loop.
		c.stats.DroppedDup++
		if c.parent != NoParent {
			c.detach()
		}
		return
	}
	key := dedupKey{origin: d.Origin, seq: d.OriginSeq}
	if prev, dup := c.seen[key]; dup {
		c.stats.DroppedDup++
		// Duplicates from the same neighbor (upstream retransmissions
		// after a lost ack) and same-depth copies via an alternate path
		// are harmless. A copy that has accumulated extra hops since we
		// first forwarded it circled back through us: routing loop.
		// Break it (CTP's datapath validation).
		if prev.from != from && d.THL >= prev.thl+c.cfg.DupLoopTHLDelta &&
			!c.isSink && c.parent != NoParent {
			c.detach()
		}
		return
	}
	c.seen[key] = seenEntry{at: c.eng.Now(), from: from, thl: d.THL}
	if c.isSink {
		c.stats.DeliveredSink++
		if c.onDeliver != nil {
			c.onDeliver(d.Origin, d.App)
		}
		return
	}
	if d.THL >= c.cfg.MaxTHL {
		// Datapath loop detection: a packet only accumulates this many
		// hops by circulating, and every node it visits — including us —
		// is on the cycle. Break it here: detach, advertise the orphan
		// state, and rebuild from the neighbors' fresh gradient.
		c.stats.DroppedTHL++
		if !c.isSink && c.parent != NoParent {
			c.detach()
		}
		return
	}
	fwd := &Data{
		Origin:    d.Origin,
		OriginSeq: d.OriginSeq,
		THL:       d.THL + 1,
		App:       d.App,
	}
	c.stats.Forwarded++
	_ = c.forward(fwd)
	_ = from
}

// OnSendDone implements node.Protocol.
func (c *CTP) OnSendDone(f *radio.Frame, acker radio.NodeID, ok bool) {
	if _, isBeacon := f.Payload.(*Beacon); isBeacon {
		return
	}
	pend, tracked := c.inflight[f]
	if !tracked {
		return
	}
	delete(c.inflight, f)
	c.est.OnDataOutcome(f.Dst, ok, c.eng.Now())
	if ok {
		return
	}
	// Failed LPL round: re-evaluate the tree and retry through the
	// (possibly new) parent.
	c.evaluate()
	pend.retries--
	if pend.retries <= 0 {
		c.stats.DroppedRetry++
		return
	}
	if c.parent == NoParent {
		c.stats.DroppedNoTree++
		return
	}
	nf := &radio.Frame{
		Kind:    radio.FrameData,
		Dst:     c.parent,
		Size:    c.cfg.DataSize,
		Payload: pend.data,
	}
	c.inflight[nf] = pend
	if err := c.node.Send(nf); err != nil {
		delete(c.inflight, nf)
		c.stats.DroppedRetry++
	}
}

func (c *CTP) gcSeen() {
	if len(c.seen) < 512 {
		return
	}
	cutoff := c.eng.Now() - 5*time.Minute
	for k, e := range c.seen {
		if e.at < cutoff {
			delete(c.seen, k)
		}
	}
}
