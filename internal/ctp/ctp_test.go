package ctp_test

import (
	"testing"
	"time"

	"teleadjust/internal/ctp"
	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// testNet wires radios, MACs, node runtimes and CTP over a deployment.
type testNet struct {
	eng   *sim.Engine
	med   *radio.Medium
	nodes []*node.Node
	macs  []*mac.MAC
	ctps  []*ctp.CTP
}

func buildNet(t *testing.T, dep *topology.Deployment, seed uint64) *testNet {
	t.Helper()
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, dep, nil, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	n := dep.Len()
	tn := &testNet{
		eng:   eng,
		med:   med,
		nodes: make([]*node.Node, n),
		macs:  make([]*mac.MAC, n),
		ctps:  make([]*ctp.CTP, n),
	}
	for i := 0; i < n; i++ {
		cfg := mac.DefaultConfig()
		cfg.AlwaysOn = i == dep.Sink
		tn.macs[i] = mac.New(eng, med.Radio(radio.NodeID(i)), cfg, sim.DeriveRNG(seed, 100+uint64(i)), nil)
		tn.nodes[i] = node.New(eng, tn.macs[i])
		tn.ctps[i] = ctp.New(tn.nodes[i], ctp.DefaultConfig(), sim.DeriveRNG(seed, 200+uint64(i)), i == dep.Sink)
	}
	for i := 0; i < n; i++ {
		tn.macs[i].Start()
		tn.ctps[i].Start()
	}
	return tn
}

func (tn *testNet) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := tn.eng.Run(tn.eng.Now() + d); err != nil {
		t.Fatal(err)
	}
}

// hopsViaParents walks the parent chain; -1 on loop or detachment.
func (tn *testNet) hopsViaParents(id int, sink int) int {
	cur := id
	for hops := 0; hops <= len(tn.ctps); hops++ {
		if cur == sink {
			return hops
		}
		p := tn.ctps[cur].Parent()
		if p == ctp.NoParent {
			return -1
		}
		cur = int(p)
	}
	return -1
}

func TestLineTreeConverges(t *testing.T) {
	dep := topology.Line(6, 7)
	tn := buildNet(t, dep, 1)
	tn.run(t, 90*time.Second)
	for i := 1; i < 6; i++ {
		if !tn.ctps[i].HasRoute() {
			t.Fatalf("node %d has no route after 90s", i)
		}
		if h := tn.hopsViaParents(i, 0); h != i {
			t.Fatalf("node %d at %d parent-hops, want %d (strict line)", i, h, i)
		}
		if tn.ctps[i].Hops() != uint8(i) {
			t.Errorf("node %d advertises %d hops, want %d", i, tn.ctps[i].Hops(), i)
		}
	}
	// Path ETX must increase along the line.
	for i := 1; i < 6; i++ {
		if tn.ctps[i].PathETX() <= tn.ctps[i-1].PathETX() {
			t.Fatalf("path ETX not increasing at node %d", i)
		}
	}
}

func TestSinkState(t *testing.T) {
	dep := topology.Line(2, 7)
	tn := buildNet(t, dep, 2)
	if tn.ctps[0].PathETX() != 0 || tn.ctps[0].Hops() != 0 {
		t.Fatal("sink must advertise cost 0, hops 0")
	}
	if !tn.ctps[0].IsSink() || !tn.ctps[0].HasRoute() {
		t.Fatal("sink must report route")
	}
	tn.run(t, 30*time.Second)
	if tn.ctps[0].Parent() != ctp.NoParent {
		t.Fatal("sink adopted a parent")
	}
}

func TestDataReachesSink(t *testing.T) {
	dep := topology.Line(5, 7)
	tn := buildNet(t, dep, 3)
	tn.run(t, 90*time.Second)
	var got []struct {
		origin radio.NodeID
		app    any
	}
	tn.ctps[0].SetDeliverFunc(func(origin radio.NodeID, app any) {
		got = append(got, struct {
			origin radio.NodeID
			app    any
		}{origin, app})
	})
	if err := tn.ctps[4].SendToSink("hello"); err != nil {
		t.Fatal(err)
	}
	tn.run(t, 30*time.Second)
	if len(got) != 1 {
		t.Fatalf("sink delivered %d packets, want 1", len(got))
	}
	if got[0].origin != 4 || got[0].app != "hello" {
		t.Fatalf("delivered %+v", got[0])
	}
}

func TestGridTreeMostlyConverges(t *testing.T) {
	dep := topology.Grid("g", 4, 4, 21, 21, false, topology.Point{}, 4)
	tn := buildNet(t, dep, 4)
	tn.run(t, 120*time.Second)
	attached := 0
	for i := range tn.ctps {
		if tn.ctps[i].HasRoute() && tn.hopsViaParents(i, dep.Sink) >= 0 {
			attached++
		}
	}
	if attached < dep.Len()-1 {
		t.Fatalf("%d/%d nodes attached loop-free", attached, dep.Len())
	}
}

func TestDataFromAllNodes(t *testing.T) {
	dep := topology.Grid("g", 3, 3, 14, 14, false, topology.Point{}, 5)
	tn := buildNet(t, dep, 5)
	tn.run(t, 120*time.Second)
	delivered := map[radio.NodeID]bool{}
	tn.ctps[dep.Sink].SetDeliverFunc(func(origin radio.NodeID, app any) {
		delivered[origin] = true
	})
	// Two rounds: CTP is best-effort per packet, so a single loss on a
	// marginal link must not fail the test.
	for round := 0; round < 2; round++ {
		for i := range tn.ctps {
			if i == dep.Sink || delivered[radio.NodeID(i)] {
				continue
			}
			if err := tn.ctps[i].SendToSink(i); err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		tn.run(t, 60*time.Second)
	}
	if len(delivered) < dep.Len()-1 {
		t.Fatalf("sink heard from %d/%d nodes", len(delivered), dep.Len()-1)
	}
}

func TestParentChangeEventFires(t *testing.T) {
	dep := topology.Line(3, 7)
	tn := buildNet(t, dep, 6)
	events := 0
	firstOld := ctp.NoParent
	tn.ctps[2].OnParentChange(func(old, new radio.NodeID) {
		if events == 0 {
			firstOld = old
		}
		events++
	})
	tn.run(t, 60*time.Second)
	if events == 0 {
		t.Fatal("no parent-change (routing found) event")
	}
	if firstOld != ctp.NoParent {
		t.Fatalf("first event old = %v, want NoParent", firstOld)
	}
}

func TestBeaconExtPiggyback(t *testing.T) {
	dep := topology.Line(2, 7)
	tn := buildNet(t, dep, 7)
	tn.ctps[0].SetBeaconExt(func() any { return "ext-data" })
	var seen any
	tn.ctps[1].OnBeaconReceived(func(from radio.NodeID, b *ctp.Beacon) {
		if from == 0 && b.Ext != nil {
			seen = b.Ext
		}
	})
	tn.run(t, 30*time.Second)
	if seen != "ext-data" {
		t.Fatalf("piggybacked ext = %v, want ext-data", seen)
	}
}

func TestNeighborAdTracked(t *testing.T) {
	dep := topology.Line(2, 7)
	tn := buildNet(t, dep, 8)
	tn.run(t, 30*time.Second)
	etx, parent, hops, ok := tn.ctps[1].NeighborAd(0)
	if !ok {
		t.Fatal("no advertisement recorded for sink neighbor")
	}
	if etx != 0 || parent != ctp.NoParent || hops != 0 {
		t.Fatalf("sink ad = (%v,%v,%v)", etx, parent, hops)
	}
}

func TestNoRouteErrors(t *testing.T) {
	dep := topology.Line(2, 300) // out of radio range
	tn := buildNet(t, dep, 9)
	tn.run(t, 30*time.Second)
	if tn.ctps[1].HasRoute() {
		t.Fatal("route across 300m should not exist")
	}
	if err := tn.ctps[1].SendToSink("x"); err == nil {
		t.Fatal("SendToSink without route must error")
	}
	if tn.ctps[1].Stats().DroppedNoTree == 0 {
		t.Fatal("drop not counted")
	}
}

func TestDuplicateSuppressionInForwarding(t *testing.T) {
	dep := topology.Line(3, 7)
	tn := buildNet(t, dep, 10)
	tn.run(t, 60*time.Second)
	count := 0
	tn.ctps[0].SetDeliverFunc(func(origin radio.NodeID, app any) { count++ })
	if err := tn.ctps[2].SendToSink("once"); err != nil {
		t.Fatal(err)
	}
	tn.run(t, 30*time.Second)
	if count != 1 {
		t.Fatalf("sink delivered %d copies, want 1", count)
	}
}
