package ctp

// White-box tests of the parent-selection and loop-recovery machinery,
// driving evaluate/refreshCost/handleBeacon directly with crafted
// neighbor state.

import (
	"math"
	"testing"
	"time"

	"teleadjust/internal/mac"
	"teleadjust/internal/node"
	"teleadjust/internal/radio"
	"teleadjust/internal/sim"
	"teleadjust/internal/topology"
)

// bareCTP builds a CTP instance on a 2-node medium without starting it.
func bareCTP(t *testing.T, cfg Config) (*sim.Engine, *CTP) {
	t.Helper()
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mac.New(eng, med.Radio(0), mac.DefaultConfig(), sim.NewRNG(1), nil)
	n := node.New(eng, m)
	return eng, New(n, cfg, sim.NewRNG(2), false)
}

// feedEstimate gives the estimator a usable link to id with quality ~1.
func feedEstimate(c *CTP, id radio.NodeID, beacons int) {
	for i := 1; i <= beacons; i++ {
		c.est.OnBeacon(id, uint32(i), time.Duration(i)*time.Second)
	}
}

func TestEvaluateAdoptsBestCandidate(t *testing.T) {
	_, c := bareCTP(t, DefaultConfig())
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	if c.Parent() != 1 {
		t.Fatalf("parent = %v, want 1", c.Parent())
	}
	if c.PathETX() < 2 || c.PathETX() > 4 {
		t.Fatalf("pathETX = %v, want ~3", c.PathETX())
	}
	if c.Hops() != 3 {
		t.Fatalf("hops = %d, want 3", c.Hops())
	}
}

func TestEvaluateSkipsImmediateLoop(t *testing.T) {
	_, c := bareCTP(t, DefaultConfig())
	feedEstimate(c, 1, 8)
	// Candidate 1 claims THIS node as its parent: must not be adopted.
	c.ads[1] = &neighborAd{pathETX: 2, parent: c.node.ID(), hops: 2}
	c.evaluate()
	if c.Parent() != NoParent {
		t.Fatalf("adopted a node that routes through us: parent=%v", c.Parent())
	}
}

func TestEvaluateSkipsDeepHopCount(t *testing.T) {
	cfg := DefaultConfig()
	_, c := bareCTP(t, cfg)
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: cfg.MaxTHL}
	c.evaluate()
	if c.Parent() != NoParent {
		t.Fatal("adopted a candidate at the hop bound (loop symptom)")
	}
}

func TestEvaluateSkipsCostBeyondBound(t *testing.T) {
	cfg := DefaultConfig()
	_, c := bareCTP(t, cfg)
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: cfg.MaxPathETX + 1, parent: NoParent, hops: 2}
	c.evaluate()
	if c.Parent() != NoParent {
		t.Fatal("adopted a candidate beyond the validity bound")
	}
}

func TestDetachOnCostBlowup(t *testing.T) {
	cfg := DefaultConfig()
	_, c := bareCTP(t, cfg)
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	if c.Parent() != 1 {
		t.Fatal("setup failed")
	}
	var events []radio.NodeID
	c.OnParentChange(func(old, new radio.NodeID) { events = append(events, new) })
	// The parent's advertised cost explodes (count-to-infinity echo).
	c.ads[1].pathETX = cfg.MaxPathETX + 10
	c.evaluate()
	if c.Parent() != NoParent {
		t.Fatalf("still attached at cost %v", c.PathETX())
	}
	if !math.IsInf(c.PathETX(), 1) {
		t.Fatalf("detached node advertises %v, want +Inf", c.PathETX())
	}
	if len(events) != 1 || events[0] != NoParent {
		t.Fatalf("parent-change events = %v", events)
	}
}

func TestRefreshCostTracksParentAd(t *testing.T) {
	_, c := bareCTP(t, DefaultConfig())
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	before := c.PathETX()
	// Parent's cost rises moderately; ours must track it even when no
	// better candidate exists (the stale-self-cost loop fuel).
	c.ads[1].pathETX = 8
	c.evaluate()
	if c.PathETX() <= before {
		t.Fatalf("cost did not track parent ad: %v -> %v", before, c.PathETX())
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	cfg := DefaultConfig()
	_, c := bareCTP(t, cfg)
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	// A second candidate marginally better than the current cost must NOT
	// trigger a switch (below the threshold).
	if c.Parent() != 1 {
		t.Fatal("setup failed")
	}
	switches := 0
	c.OnParentChange(func(old, new radio.NodeID) { switches++ })
	feedEstimate(c, 7, 9)
	cur := c.currentCost()
	c.ads[7] = &neighborAd{pathETX: cur - 1 - cfg.ParentSwitchThreshold/2, parent: NoParent, hops: 1}
	c.evaluate()
	if switches != 0 {
		t.Fatalf("switched on a sub-threshold improvement (cur=%v)", cur)
	}
	// A decisive improvement must switch.
	c.ads[7].pathETX = 0.1
	c.evaluate()
	if switches != 1 || c.Parent() != 7 {
		t.Fatalf("did not switch on a decisive improvement: switches=%d parent=%v", switches, c.Parent())
	}
}

func TestSinkNeverEvaluates(t *testing.T) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mac.New(eng, med.Radio(0), mac.DefaultConfig(), sim.NewRNG(1), nil)
	n := node.New(eng, m)
	sink := New(n, DefaultConfig(), sim.NewRNG(2), true)
	feedEstimate(sink, 1, 8)
	sink.ads[1] = &neighborAd{pathETX: 0.5, parent: NoParent, hops: 1}
	sink.evaluate()
	if sink.Parent() != NoParent || sink.PathETX() != 0 {
		t.Fatal("sink adopted a parent")
	}
}

func TestDatapathLoopDetectionCrossSender(t *testing.T) {
	_, c := bareCTP(t, DefaultConfig())
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	if c.Parent() != 1 {
		t.Fatal("setup failed")
	}
	d := &Data{Origin: 9, OriginSeq: 5, THL: 3}
	c.handleData(7, d) // first copy from child 7: forwarded
	if c.Parent() != 1 {
		t.Fatal("first copy must not detach")
	}
	// Same packet again from the SAME child: upstream retransmission,
	// harmless.
	c.handleData(7, d)
	if c.Parent() != 1 {
		t.Fatal("same-sender duplicate must not detach")
	}
	// Similar depth via an alternate path (lost-ack duplicate after a
	// parent switch): harmless.
	alt := &Data{Origin: 9, OriginSeq: 5, THL: 5}
	c.handleData(8, alt)
	if c.Parent() != 1 {
		t.Fatal("near-depth alternate-path duplicate must not detach")
	}
	// The packet returns having circled a cycle (≥3 extra hops): loop.
	looped := &Data{Origin: 9, OriginSeq: 5, THL: 6}
	c.handleData(8, looped)
	if c.Parent() != NoParent {
		t.Fatal("higher-THL cross-sender duplicate did not break the loop")
	}
}

func TestDatapathLoopDetectionOwnPacket(t *testing.T) {
	_, c := bareCTP(t, DefaultConfig())
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	own := &Data{Origin: c.node.ID(), OriginSeq: 1, THL: 4}
	c.handleData(5, own)
	if c.Parent() != NoParent {
		t.Fatal("receiving our own packet did not break the loop")
	}
}

func TestTHLExhaustionDetaches(t *testing.T) {
	cfg := DefaultConfig()
	_, c := bareCTP(t, cfg)
	feedEstimate(c, 1, 8)
	c.ads[1] = &neighborAd{pathETX: 2, parent: NoParent, hops: 2}
	c.evaluate()
	d := &Data{Origin: 9, OriginSeq: 5, THL: cfg.MaxTHL}
	c.handleData(7, d)
	if c.Parent() != NoParent {
		t.Fatal("THL-exhausted packet did not break the loop")
	}
	if c.Stats().DroppedTHL != 1 {
		t.Fatal("THL drop not counted")
	}
}

func TestSinkNeverDetachesOnLoopEvidence(t *testing.T) {
	eng := sim.NewEngine()
	params := radio.DefaultParams()
	params.ShadowSigmaDB = 0
	med, err := radio.NewMedium(eng, topology.Line(2, 5), nil, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mac.New(eng, med.Radio(0), mac.DefaultConfig(), sim.NewRNG(1), nil)
	n := node.New(eng, m)
	sink := New(n, DefaultConfig(), sim.NewRNG(2), true)
	d := &Data{Origin: 9, OriginSeq: 5}
	sink.handleData(7, d)
	sink.handleData(8, d) // dup from another sender: sink just drops it
	if sink.Stats().DroppedDup != 1 {
		t.Fatal("sink dedup broken")
	}
	if !sink.HasRoute() {
		t.Fatal("sink lost its (implicit) route")
	}
}
