package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	eng := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := eng.Run(eng.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTimerRestart(b *testing.B) {
	eng := NewEngine()
	tm := NewTimer(eng, func() {})
	for i := 0; i < b.N; i++ {
		tm.Start(time.Millisecond)
	}
}

func BenchmarkDeriveRNG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DeriveRNG(42, uint64(i))
	}
}
