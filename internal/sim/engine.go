// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, cancellable timers, and seeded random
// number streams. Every other substrate in this repository (radio, MAC,
// routing, application workloads) is driven by this engine so that whole
// simulated networks are reproducible from a single seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly via
// Stop before the run limit was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event lifecycle states. An event is pending from scheduling until it
// fires or is cancelled; fired and cancelled events return to the
// engine's free list for reuse, which bumps their generation so stale
// EventRef handles can never act on the recycled object.
const (
	eventPending uint8 = iota + 1
	eventFired
	eventCancelled
)

// Event is a pooled scheduled callback. Callers never hold *Event
// directly: Schedule returns an EventRef whose generation pins the
// specific scheduling this handle refers to.
type Event struct {
	at  time.Duration
	seq uint64
	// fn is the zero-argument callback; when nil, argFn(arg) runs
	// instead. The two-field form lets hot paths schedule a pre-bound
	// method plus argument without allocating a fresh closure per event.
	fn    func()
	argFn func(any)
	arg   any
	idx   int // heap index; -1 when not queued
	state uint8
	gen   uint64
	eng   *Engine
}

// EventRef is a cancellable handle to one scheduled event. The zero value
// is an idle handle: Cancel and Pending on it are no-ops. Refs are
// generation-checked, so holding one past its event's firing or
// cancellation is always safe — the event object may already be serving
// a later scheduling, and a stale ref will not touch it.
type EventRef struct {
	e   *Event
	gen uint64
}

// valid reports whether the ref still addresses the scheduling it was
// created for (the event object has not been recycled since).
func (r EventRef) valid() bool { return r.e != nil && r.e.gen == r.gen }

// At reports the virtual time this event is scheduled to fire, or 0 when
// the ref is stale or idle.
func (r EventRef) At() time.Duration {
	if !r.valid() {
		return 0
	}
	return r.e.at
}

// Cancel prevents the event from firing and removes it from the engine's
// heap immediately via its stored index, so cancelled events do not linger
// until popped. Cancelling an already-fired or already-cancelled event is a
// no-op, as is cancelling through a stale or zero ref. Cancel reports
// whether the event was still pending.
func (r EventRef) Cancel() bool {
	if !r.valid() || r.e.state != eventPending || r.e.idx < 0 {
		return false
	}
	e := r.e
	heap.Remove(&e.eng.queue, e.idx)
	e.eng.release(e, eventCancelled)
	return true
}

// Pending reports whether the event is still queued and not cancelled.
func (r EventRef) Pending() bool {
	return r.valid() && r.e.state == eventPending && r.e.idx >= 0
}

// Engine is a discrete-event scheduler with a virtual clock. The zero value
// is not usable; construct with NewEngine.
//
// Engine is not safe for concurrent use: simulations here are single
// goroutine by design, which keeps them deterministic.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool

	// free is the event pool: fired and cancelled events are recycled
	// here instead of garbage. Pool order never affects behaviour —
	// dispatch order depends only on (at, seq).
	free []*Event

	// processed counts events dispatched since construction.
	processed uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule enqueues fn to run after delay (relative to Now). A negative
// delay is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) EventRef {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	return e.scheduleAt(e.now+delay, fn, nil, nil)
}

// ScheduleArg enqueues fn(arg) to run after delay. It behaves exactly
// like Schedule but keeps hot paths allocation-free: a pre-bound
// func(any) plus a pointer-typed arg costs nothing per call, where an
// equivalent fresh closure would allocate on every scheduling.
func (e *Engine) ScheduleArg(delay time.Duration, fn func(any), arg any) EventRef {
	if fn == nil {
		panic("sim: ScheduleArg called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	return e.scheduleAt(e.now+delay, nil, fn, arg)
}

// ScheduleAt enqueues fn to run at the absolute virtual time at. Times in
// the past are clamped to Now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) EventRef {
	if fn == nil {
		panic("sim: ScheduleAt called with nil function")
	}
	if at < e.now {
		at = e.now
	}
	return e.scheduleAt(at, fn, nil, nil)
}

func (e *Engine) scheduleAt(at time.Duration, fn func(), argFn func(any), arg any) EventRef {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{eng: e}
	}
	ev.at, ev.seq = at, e.seq
	ev.fn, ev.argFn, ev.arg = fn, argFn, arg
	ev.state = eventPending
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{e: ev, gen: ev.gen}
}

// release marks an event fired or cancelled and returns it to the pool.
// The generation bump invalidates every outstanding EventRef to this
// scheduling; clearing the callback fields drops closure references so
// the pool retains no object graphs.
func (e *Engine) release(ev *Event, state uint8) {
	ev.state = state
	ev.gen++
	ev.fn, ev.argFn, ev.arg = nil, nil, nil
	ev.idx = -1
	e.free = append(e.free, ev)
}

// Stop makes the current Run return after the in-flight event completes.
// The stop request is persistent until observed: if no Run is in
// progress, the next Run (or RunAll) call returns ErrStopped immediately
// and clears the request, rather than silently dropping it.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty or the
// clock would pass until. Events scheduled exactly at until still fire. It
// returns ErrStopped if Stop was called, nil otherwise.
func (e *Engine) Run(until time.Duration) error {
	return e.dispatch(until, true, 0)
}

// RunAll dispatches events until the queue is empty, with a safety cap on
// the number of events to guard against runaway self-scheduling loops.
func (e *Engine) RunAll(maxEvents uint64) error {
	return e.dispatch(0, false, maxEvents)
}

// dispatch is the single event loop behind Run and RunAll. haveHorizon
// limits the virtual clock to until (advancing it there on return);
// maxEvents > 0 bounds the number of dispatched events. Both paths enforce
// clock monotonicity: a popped event timestamped before the clock is a
// scheduler bug and aborts the run. A pending Stop — whether issued
// mid-run or between runs — is observed at the first opportunity,
// cleared, and reported as ErrStopped.
func (e *Engine) dispatch(until time.Duration, haveHorizon bool, maxEvents uint64) error {
	start := e.processed
	for {
		if e.stopped {
			e.stopped = false
			return ErrStopped
		}
		if e.queue.Len() == 0 {
			break
		}
		next := e.queue[0]
		if haveHorizon && next.at > until {
			// Advance the clock to the horizon so repeated Run calls
			// observe monotonic time.
			e.now = until
			return nil
		}
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events", maxEvents)
		}
		heap.Pop(&e.queue)
		if next.state != eventPending {
			// Defensive: Cancel removes events eagerly, so non-pending
			// events should never surface here.
			continue
		}
		if next.at < e.now {
			return fmt.Errorf("sim: event time %v before clock %v", next.at, e.now)
		}
		e.now = next.at
		next.idx = -1
		e.processed++
		if next.fn != nil {
			next.fn()
		} else {
			next.argFn(next.arg)
		}
		e.release(next, eventFired)
	}
	if haveHorizon && e.now < until {
		e.now = until
	}
	return nil
}

// QueueLen returns the number of queued events. Cancelled events leave the
// queue immediately, so every queued event is live.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
