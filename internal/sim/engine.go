// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, cancellable timers, and seeded random
// number streams. Every other substrate in this repository (radio, MAC,
// routing, application workloads) is driven by this engine so that whole
// simulated networks are reproducible from a single seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly via
// Stop before the run limit was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it before it fires.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int // heap index; -1 when not queued
	dead bool
	eng  *Engine
}

// At reports the virtual time this event is (or was) scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing and removes it from the engine's
// heap immediately via its stored index, so cancelled events do not linger
// until popped. Cancelling an already-fired or already-cancelled event is a
// no-op. Cancel reports whether the event was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.dead || e.idx < 0 {
		return false
	}
	e.dead = true
	heap.Remove(&e.eng.queue, e.idx)
	return true
}

// Pending reports whether the event is still queued and not cancelled.
func (e *Event) Pending() bool { return e != nil && !e.dead && e.idx >= 0 }

// Engine is a discrete-event scheduler with a virtual clock. The zero value
// is not usable; construct with NewEngine.
//
// Engine is not safe for concurrent use: simulations here are single
// goroutine by design, which keeps them deterministic.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool

	// processed counts events dispatched since construction.
	processed uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule enqueues fn to run after delay (relative to Now). A negative
// delay is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if delay < 0 {
		delay = 0
	}
	return e.scheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn to run at the absolute virtual time at. Times in
// the past are clamped to Now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil function")
	}
	if at < e.now {
		at = e.now
	}
	return e.scheduleAt(at, fn)
}

func (e *Engine) scheduleAt(at time.Duration, fn func()) *Event {
	ev := &Event{at: at, seq: e.seq, fn: fn, idx: -1, eng: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Stop makes the current Run return after the in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty or the
// clock would pass until. Events scheduled exactly at until still fire. It
// returns ErrStopped if Stop was called, nil otherwise.
func (e *Engine) Run(until time.Duration) error {
	return e.dispatch(until, true, 0)
}

// RunAll dispatches events until the queue is empty, with a safety cap on
// the number of events to guard against runaway self-scheduling loops.
func (e *Engine) RunAll(maxEvents uint64) error {
	return e.dispatch(0, false, maxEvents)
}

// dispatch is the single event loop behind Run and RunAll. haveHorizon
// limits the virtual clock to until (advancing it there on return);
// maxEvents > 0 bounds the number of dispatched events. Both paths enforce
// clock monotonicity: a popped event timestamped before the clock is a
// scheduler bug and aborts the run.
func (e *Engine) dispatch(until time.Duration, haveHorizon bool, maxEvents uint64) error {
	e.stopped = false
	start := e.processed
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if haveHorizon && next.at > until {
			// Advance the clock to the horizon so repeated Run calls
			// observe monotonic time.
			e.now = until
			return nil
		}
		if maxEvents > 0 && e.processed-start >= maxEvents {
			return fmt.Errorf("sim: exceeded %d events", maxEvents)
		}
		heap.Pop(&e.queue)
		if next.dead {
			// Defensive: Cancel removes events eagerly, so dead events
			// should never surface here.
			continue
		}
		if next.at < e.now {
			return fmt.Errorf("sim: event time %v before clock %v", next.at, e.now)
		}
		e.now = next.at
		next.idx = -1
		e.processed++
		next.fn()
	}
	if haveHorizon && e.now < until {
		e.now = until
	}
	return nil
}

// QueueLen returns the number of queued events. Cancelled events leave the
// queue immediately, so every queued event is live.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}
