package sim

import (
	"testing"
	"time"
)

// These are whitebox tests for the event free list: events are recycled
// after firing or cancellation, so every handle the engine gives out must
// be generation-checked and every lifecycle transition explicit. A stale
// EventRef acting on a recycled event would cancel somebody else's
// scheduling — the classic pooling bug this file pins against.

// TestEventPoolRecycles verifies fired and cancelled events return to the
// free list and are reused by later schedulings.
func TestEventPoolRecycles(t *testing.T) {
	eng := NewEngine()
	r1 := eng.Schedule(time.Millisecond, func() {})
	first := r1.e
	if first.state != eventPending {
		t.Fatalf("scheduled event state = %d, want pending", first.state)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if first.state != eventFired {
		t.Fatalf("state after firing = %d, want fired", first.state)
	}
	if len(eng.free) != 1 || eng.free[0] != first {
		t.Fatalf("fired event not pooled (free list %v)", eng.free)
	}
	r2 := eng.Schedule(time.Millisecond, func() {})
	if r2.e != first {
		t.Fatal("second scheduling did not reuse the pooled event")
	}
	if r2.gen == r1.gen {
		t.Fatal("recycled event kept its generation")
	}
	if !r2.Cancel() {
		t.Fatal("cancel of live recycled event failed")
	}
	if first.state != eventCancelled {
		t.Fatalf("state after cancel = %d, want cancelled", first.state)
	}
	if len(eng.free) != 1 {
		t.Fatalf("cancelled event not pooled (free list len %d)", len(eng.free))
	}
}

// TestStaleRefCannotTouchRecycledEvent is the resurrection guard: a ref
// held past its event's firing must become inert even though the event
// object is already serving a new scheduling.
func TestStaleRefCannotTouchRecycledEvent(t *testing.T) {
	eng := NewEngine()
	stale := eng.Schedule(time.Millisecond, func() {})
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// The recycled object now carries a different, live scheduling.
	fired := false
	live := eng.Schedule(time.Millisecond, func() { fired = true })
	if live.e != stale.e {
		t.Fatal("test setup: pool did not hand back the same event")
	}
	if stale.Pending() {
		t.Fatal("stale ref reports pending")
	}
	if stale.Cancel() {
		t.Fatal("stale ref cancelled the recycled event's new scheduling")
	}
	if stale.At() != 0 {
		t.Fatalf("stale ref At = %v, want 0", stale.At())
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("live scheduling was lost")
	}
}

// TestCancelDuringOwnCallback pins that cancelling the event currently
// firing (possible when a callback reaches its own handle) is a no-op
// rather than a heap corruption or double release.
func TestCancelDuringOwnCallback(t *testing.T) {
	eng := NewEngine()
	var self EventRef
	cancelled := true
	self = eng.Schedule(time.Millisecond, func() {
		cancelled = self.Cancel()
	})
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if cancelled {
		t.Fatal("event cancelled itself while firing")
	}
	if len(eng.free) != 1 {
		t.Fatalf("free list len %d after run, want 1", len(eng.free))
	}
}

// TestScheduleArg pins the closure-free scheduling path: fn(arg) fires
// with the argument it was scheduled with, in timestamp order alongside
// plain Schedule events.
func TestScheduleArg(t *testing.T) {
	eng := NewEngine()
	var got []int
	record := func(a any) { got = append(got, *a.(*int)) }
	one, two, three := 1, 2, 3
	eng.ScheduleArg(2*time.Millisecond, record, &two)
	eng.ScheduleArg(3*time.Millisecond, record, &three)
	eng.ScheduleArg(time.Millisecond, record, &one)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ScheduleArg order = %v, want [1 2 3]", got)
	}
}

// TestStopBetweenRuns is the regression test for the dropped-Stop bug:
// dispatch used to clear the stop flag on entry, so a Stop issued while
// no Run was in progress vanished silently. The contract is that a stop
// request persists until observed — the next Run returns ErrStopped —
// and is then cleared.
func TestStopBetweenRuns(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(time.Millisecond, func() { fired = true })
	eng.Stop()
	if err := eng.Run(time.Second); err != ErrStopped {
		t.Fatalf("Run after idle Stop = %v, want ErrStopped", err)
	}
	if fired {
		t.Fatal("event fired despite pending stop")
	}
	// The request was observed exactly once: the next Run proceeds.
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run after observed stop = %v", err)
	}
	if !fired {
		t.Fatal("event lost after stop was observed")
	}
	// Same contract on the RunAll path.
	eng.Schedule(time.Millisecond, func() {})
	eng.Stop()
	if err := eng.RunAll(100); err != ErrStopped {
		t.Fatalf("RunAll after idle Stop = %v, want ErrStopped", err)
	}
	if err := eng.RunAll(100); err != nil {
		t.Fatalf("RunAll after observed stop = %v", err)
	}
}

// TestScheduleAllocFree is the alloc contract for the scheduling hot
// path: once the pool is warm, schedule→fire cycles and timer restarts
// allocate nothing.
func TestScheduleAllocFree(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		eng.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		eng.Schedule(time.Microsecond, fn)
		if err := eng.Run(eng.Now() + time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("schedule+fire allocates %v per cycle, want 0", allocs)
	}
	argFn := func(any) {}
	arg := &struct{}{}
	if allocs := testing.AllocsPerRun(1000, func() {
		eng.ScheduleArg(time.Microsecond, argFn, arg)
		if err := eng.Run(eng.Now() + time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ScheduleArg+fire allocates %v per cycle, want 0", allocs)
	}
	tm := NewTimer(eng, fn)
	if allocs := testing.AllocsPerRun(1000, func() {
		tm.Start(time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Timer.Start allocates %v per restart, want 0", allocs)
	}
}
