package sim

import "math/rand/v2"

// NewRNG returns a deterministic random stream for the given seed.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, splitmix64(seed)))
}

// DeriveRNG returns an independent stream derived from a base seed and a
// stream index (e.g. one stream per node), so per-entity randomness does not
// depend on the order entities consume the base stream.
func DeriveRNG(seed uint64, stream uint64) *rand.Rand {
	s := splitmix64(seed ^ (0x9e3779b97f4a7c15 * (stream + 1)))
	return rand.New(rand.NewPCG(s, splitmix64(s)))
}

// ReseedPCG reinitializes pcg in place to the exact stream DeriveRNG
// would hand out for (seed, stream). Wrapping one long-lived PCG in one
// rand.Rand and reseeding it per entity gives allocation-free iteration
// over millions of derived streams (e.g. one stream per radio link).
func ReseedPCG(pcg *rand.PCG, seed, stream uint64) {
	s := splitmix64(seed ^ (0x9e3779b97f4a7c15 * (stream + 1)))
	pcg.Seed(s, splitmix64(s))
}

// splitmix64 is the SplitMix64 finalizer, used to decorrelate seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
