package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	eng.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	eng.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of order: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	eng := NewEngine()
	var at time.Duration
	eng.Schedule(7*time.Millisecond, func() { at = eng.Now() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 7ms", at)
	}
	if eng.Now() != time.Second {
		t.Fatalf("Now after Run = %v, want horizon 1s", eng.Now())
	}
}

func TestEngineHorizonExcludesLaterEvents(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(2*time.Second, func() { fired = true })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestEventCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.Schedule(time.Millisecond, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel on pending event returned false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Schedule(time.Millisecond, func() { count++; eng.Stop() })
	eng.Schedule(2*time.Millisecond, func() { count++ })
	if err := eng.Run(time.Second); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.Schedule(time.Millisecond, func() {
		eng.Schedule(-time.Hour, func() { fired = true })
	})
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
}

func TestSelfScheduling(t *testing.T) {
	eng := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			eng.Schedule(time.Millisecond, step)
		}
	}
	eng.Schedule(0, step)
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestRunAllCap(t *testing.T) {
	eng := NewEngine()
	var loop func()
	loop = func() { eng.Schedule(time.Millisecond, loop) }
	eng.Schedule(0, loop)
	if err := eng.RunAll(50); err == nil {
		t.Fatal("RunAll with runaway loop returned nil error")
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		var times []time.Duration
		for _, d := range delays {
			eng.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, eng.Now())
			})
		}
		if err := eng.Run(time.Hour); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerRestart(t *testing.T) {
	eng := NewEngine()
	count := 0
	tm := NewTimer(eng, func() { count++ })
	tm.Start(5 * time.Millisecond)
	eng.Schedule(2*time.Millisecond, func() { tm.Start(10 * time.Millisecond) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (restart must cancel pending)", count)
	}
}

func TestTimerStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	tm := NewTimer(eng, func() { count++ })
	tm.Start(5 * time.Millisecond)
	if !tm.Pending() {
		t.Fatal("timer not pending after Start")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on armed timer")
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestTickerPeriodic(t *testing.T) {
	eng := NewEngine()
	var times []time.Duration
	tk := NewTicker(eng, 10*time.Millisecond, func() { times = append(times, eng.Now()) })
	tk.Start()
	eng.Schedule(35*time.Millisecond, func() { tk.Stop() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(times) != 3 {
		t.Fatalf("ticks = %d, want 3 (at 10,20,30ms)", len(times))
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if times[i] != want*time.Millisecond {
			t.Fatalf("tick %d at %v, want %vms", i, times[i], want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	eng := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(eng, time.Millisecond, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDeriveRNGIndependence(t *testing.T) {
	streams := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		r := DeriveRNG(7, i)
		streams[r.Uint64()] = true
	}
	if len(streams) < 60 {
		t.Fatalf("derived streams collide too much: %d unique of 64", len(streams))
	}
}

func TestDeriveRNGDeterminism(t *testing.T) {
	a, b := DeriveRNG(9, 3), DeriveRNG(9, 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("DeriveRNG not deterministic")
		}
	}
}

func TestScheduleAt(t *testing.T) {
	eng := NewEngine()
	var at time.Duration
	eng.ScheduleAt(50*time.Millisecond, func() { at = eng.Now() })
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if at != 50*time.Millisecond {
		t.Fatalf("fired at %v", at)
	}
	// Past times clamp to now.
	eng2 := NewEngine()
	fired := false
	eng2.Schedule(100*time.Millisecond, func() {
		eng2.ScheduleAt(10*time.Millisecond, func() { fired = true })
	})
	if err := eng2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("past-time event never fired")
	}
}

func TestRunAllCompletes(t *testing.T) {
	eng := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if err := eng.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if eng.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestProcessedCounter(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(time.Millisecond, func() {})
	ev := eng.Schedule(2*time.Millisecond, func() {})
	ev.Cancel()
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if eng.Processed() != 1 {
		t.Fatalf("processed = %d, want 1 (cancelled events don't count)", eng.Processed())
	}
}

func TestEventAccessors(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule(5*time.Millisecond, func() {})
	if ev.At() != 5*time.Millisecond {
		t.Fatalf("At = %v", ev.At())
	}
	if !ev.Pending() {
		t.Fatal("scheduled event not pending")
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	var zeroEv EventRef
	if zeroEv.Cancel() {
		t.Fatal("zero-ref cancel returned true")
	}
	if zeroEv.Pending() {
		t.Fatal("zero-ref reports pending")
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	eng := NewEngine()
	events := make([]EventRef, 100)
	for i := range events {
		events[i] = eng.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if eng.QueueLen() != 100 {
		t.Fatalf("queue = %d, want 100", eng.QueueLen())
	}
	// Cancel from the middle and the ends; each must leave the heap
	// immediately rather than lingering as a dead entry.
	for _, i := range []int{0, 50, 99, 25, 75} {
		if !events[i].Cancel() {
			t.Fatalf("Cancel(%d) returned false", i)
		}
	}
	if eng.QueueLen() != 95 {
		t.Fatalf("queue after 5 cancels = %d, want 95", eng.QueueLen())
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if eng.QueueLen() != 0 {
		t.Fatalf("queue after Run = %d", eng.QueueLen())
	}
	if eng.Processed() != 95 {
		t.Fatalf("processed = %d, want the 95 live events", eng.Processed())
	}
}

func TestCancelledEventNeverFires(t *testing.T) {
	eng := NewEngine()
	count := 0
	var evs []EventRef
	for i := 0; i < 10; i++ {
		evs = append(evs, eng.Schedule(time.Millisecond, func() { count++ }))
	}
	// Cancel every other event at the same timestamp: FIFO order of the
	// survivors must hold and none of the cancelled ones may fire.
	for i := 0; i < 10; i += 2 {
		evs[i].Cancel()
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Fatalf("fired %d, want 5", count)
	}
}

func TestDispatchKeepsClockMonotonic(t *testing.T) {
	// ScheduleAt clamps past times to Now, so neither dispatch path can
	// observe time running backwards; the event fires at the clamped time.
	eng := NewEngine()
	eng.Schedule(time.Millisecond, func() {})
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var at time.Duration
	eng.ScheduleAt(time.Millisecond, func() { at = eng.Now() })
	if err := eng.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != time.Second {
		t.Fatalf("past-scheduled event fired at %v, want the clamped 1s", at)
	}
	eng2 := NewEngine()
	eng2.Schedule(time.Millisecond, func() {})
	if err := eng2.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	at = 0
	eng2.ScheduleAt(time.Millisecond, func() { at = eng2.Now() })
	if err := eng2.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != time.Second {
		t.Fatalf("past-scheduled event fired at %v, want the clamped 1s", at)
	}
}

func TestRunThenRunAllSharedDispatch(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(time.Millisecond, func() { order = append(order, 1) })
	eng.Schedule(time.Hour, func() { order = append(order, 2) })
	if err := eng.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := eng.RunAll(0); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != time.Hour {
		t.Fatalf("Now = %v, want 1h", eng.Now())
	}
}
