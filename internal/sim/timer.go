package sim

import "time"

// Timer is a restartable one-shot timer bound to an Engine. Unlike raw
// Schedule calls, a Timer can be re-armed and always has at most one pending
// firing, which is the discipline protocol state machines need.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
}

// NewTimer creates a stopped timer that runs fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	if eng == nil || fn == nil {
		panic("sim: NewTimer requires engine and function")
	}
	return &Timer{eng: eng, fn: fn}
}

// Start (re)arms the timer to fire after d. Any pending firing is cancelled.
func (t *Timer) Start(d time.Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	ok := t.ev.Cancel()
	t.ev = nil
	return ok
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev != nil && t.ev.Pending() }

// Ticker fires fn every period until stopped.
type Ticker struct {
	eng    *Engine
	fn     func()
	period time.Duration
	ev     *Event
	on     bool
}

// NewTicker creates a stopped ticker.
func NewTicker(eng *Engine, period time.Duration, fn func()) *Ticker {
	if eng == nil || fn == nil {
		panic("sim: NewTicker requires engine and function")
	}
	if period <= 0 {
		panic("sim: NewTicker requires positive period")
	}
	return &Ticker{eng: eng, fn: fn, period: period}
}

// Start begins ticking; the first tick fires one period from now.
func (t *Ticker) Start() {
	if t.on {
		return
	}
	t.on = true
	t.arm()
}

// StartWithOffset begins ticking with the first tick after offset, then
// every period.
func (t *Ticker) StartWithOffset(offset time.Duration) {
	if t.on {
		return
	}
	t.on = true
	t.ev = t.eng.Schedule(offset, t.tick)
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, t.tick)
}

func (t *Ticker) tick() {
	if !t.on {
		return
	}
	t.arm()
	t.fn()
}

// Stop halts the ticker. It may be restarted with Start.
func (t *Ticker) Stop() {
	t.on = false
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}
