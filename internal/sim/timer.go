package sim

import "time"

// Timer is a restartable one-shot timer bound to an Engine. Unlike raw
// Schedule calls, a Timer can be re-armed and always has at most one pending
// firing, which is the discipline protocol state machines need.
type Timer struct {
	eng *Engine
	fn  func()
	// fire is the scheduled callback, bound once at construction so
	// re-arming the timer never allocates a fresh closure (Timer.Start
	// was one of the top allocation sites on the recorded profiles).
	fire func()
	ev   EventRef
}

// NewTimer creates a stopped timer that runs fn when it fires.
func NewTimer(eng *Engine, fn func()) *Timer {
	if eng == nil || fn == nil {
		panic("sim: NewTimer requires engine and function")
	}
	t := &Timer{eng: eng, fn: fn}
	t.fire = func() {
		t.ev = EventRef{}
		t.fn()
	}
	return t
}

// Start (re)arms the timer to fire after d. Any pending firing is cancelled.
func (t *Timer) Start(d time.Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, t.fire)
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	ok := t.ev.Cancel()
	t.ev = EventRef{}
	return ok
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Ticker fires fn every period until stopped.
type Ticker struct {
	eng    *Engine
	fn     func()
	tickFn func() // t.tick, bound once so periodic re-arming never allocates
	period time.Duration
	ev     EventRef
	on     bool
}

// NewTicker creates a stopped ticker.
func NewTicker(eng *Engine, period time.Duration, fn func()) *Ticker {
	if eng == nil || fn == nil {
		panic("sim: NewTicker requires engine and function")
	}
	if period <= 0 {
		panic("sim: NewTicker requires positive period")
	}
	t := &Ticker{eng: eng, fn: fn, period: period}
	t.tickFn = t.tick
	return t
}

// Start begins ticking; the first tick fires one period from now.
func (t *Ticker) Start() {
	if t.on {
		return
	}
	t.on = true
	t.arm()
}

// StartWithOffset begins ticking with the first tick after offset, then
// every period.
func (t *Ticker) StartWithOffset(offset time.Duration) {
	if t.on {
		return
	}
	t.on = true
	t.ev = t.eng.Schedule(offset, t.tickFn)
}

func (t *Ticker) arm() {
	t.ev = t.eng.Schedule(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	if !t.on {
		return
	}
	t.arm()
	t.fn()
}

// Stop halts the ticker. It may be restarted with Start.
func (t *Ticker) Stop() {
	t.on = false
	t.ev.Cancel()
	t.ev = EventRef{}
}
