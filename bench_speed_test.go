package teleadjust

import (
	"sort"
	"strings"
	"testing"

	"teleadjust/internal/benchjson"
)

// TestBenchSpeedTrajectory gates the committed optimization record: the
// ordered step sections of BENCH_speed.json must never regress. Each
// "stepN-*" section records the hot-path metrics after one optimization
// landed; a new step whose ns/op, allocs/op or bytes/op is worse than
// the previous step's fails here, so the trajectory in the record is
// guaranteed monotone and a speed claim cannot quietly rot.
func TestBenchSpeedTrajectory(t *testing.T) {
	rec, err := benchjson.Load("BENCH_speed.json")
	if err != nil {
		t.Fatal(err)
	}
	var steps []string
	for name := range rec.Sections {
		if strings.HasPrefix(name, "step") {
			steps = append(steps, name)
		}
	}
	sort.Strings(steps)
	if len(steps) < 3 {
		t.Fatalf("BENCH_speed.json has %d step sections %v, want a baseline plus at least 2 optimization steps", len(steps), steps)
	}
	for i := 1; i < len(steps); i++ {
		prev, cur := rec.Sections[steps[i-1]], rec.Sections[steps[i]]
		compared := 0
		for metric, pv := range prev.Values {
			cv, ok := cur.Values[metric]
			if !ok {
				continue
			}
			switch {
			case strings.HasSuffix(metric, "_allocs_per_op"), strings.HasSuffix(metric, "_bytes_per_op"):
				compared++
				if cv > pv {
					t.Errorf("%s → %s: %s regressed %v → %v", steps[i-1], steps[i], metric, pv, cv)
				}
			case strings.HasSuffix(metric, "_ns_per_op"):
				compared++
				// 5% headroom: wall-clock metrics carry run-to-run noise
				// that alloc counts do not.
				if cv > pv*1.05 {
					t.Errorf("%s → %s: %s regressed %v → %v", steps[i-1], steps[i], metric, pv, cv)
				}
			}
		}
		if compared == 0 {
			t.Errorf("%s → %s share no gated metrics; consecutive steps must be comparable", steps[i-1], steps[i])
		}
	}
}
